//! Shared experiment harness.
//!
//! Every figure and every quantitative claim of the paper has one function here that
//! runs the corresponding experiment and returns the rendered text table(s).  The
//! `exp_*` binaries in `src/bin/` are thin wrappers around these functions, and the
//! `experiments` binary runs all of them in order (this is what produced the numbers
//! recorded in `EXPERIMENTS.md`).

use lgfi_analysis::table::{f2, pct};
use lgfi_analysis::{check_theorem3, check_theorem4, Summary, Table, TrafficSummary};
use lgfi_baselines::{DimensionOrderRouter, GlobalInfoRouter, LocalInfoRouter, StaticBlockRouter};
use lgfi_core::block::BlockSet;
use lgfi_core::boundary::BoundaryMap;
use lgfi_core::frame::BlockFrame;
use lgfi_core::identification::IdentificationProcess;
use lgfi_core::infostore::InfoStore;
use lgfi_core::labeling::LabelingEngine;
use lgfi_core::network::{LgfiNetwork, NetworkConfig};
use lgfi_core::routing::{route_static, LgfiRouter, Router};
use lgfi_core::safety::is_safe_source_in;
use lgfi_core::status::NodeStatus;
use lgfi_core::traffic_engine::TrafficSpec;
use lgfi_sim::FaultPlan;
use lgfi_topology::{coord, Coord, Direction, Mesh};
use lgfi_workloads::{
    run_trials, run_trials_on, DynamicFaultConfig, FaultGenerator, FaultPlacement, Scenario,
    TrafficGenerator, TrafficPattern,
};

// ---------------------------------------------------------------------------------
// The environment-knob registry
// ---------------------------------------------------------------------------------

/// One typed numeric environment knob of the bench harness: its variable name,
/// default value and a one-line description for the generated help listing.
#[derive(Debug, Clone, Copy)]
pub struct EnvKnob {
    /// Environment variable name (`LGFI_*`).
    pub name: &'static str,
    /// Value used when the variable is unset or empty.
    pub default: usize,
    /// One-line description shown by [`knobs_help`].
    pub doc: &'static str,
}

/// The registry of every numeric `LGFI_*` knob the experiments read.  Knobs are
/// parsed exclusively through [`knob`], so this table *is* the configuration
/// surface: adding a knob here documents it, defaults it and lists it in every
/// binary's `--help` at once.  Worker-count knobs treat `0` as one worker per
/// available core, and every knob is an execution or scale detail — experiment
/// *results* are bit-identical across the thread/frontier settings.
pub const ENV_KNOBS: &[EnvKnob] = &[
    EnvKnob {
        name: "LGFI_THREADS",
        default: 1,
        doc: "worker threads for the information rounds (0 = one per core)",
    },
    EnvKnob {
        name: "LGFI_PROBE_THREADS",
        default: 1,
        doc: "worker threads for probe-sweep routing decisions (0 = one per core)",
    },
    EnvKnob {
        name: "LGFI_TRAFFIC_THREADS",
        default: 1,
        doc: "worker threads for per-cycle traffic decisions (0 = one per core)",
    },
    EnvKnob {
        name: "LGFI_SLO_CYCLES",
        default: 600,
        doc: "injection horizon (cycles) of the exp_slo campaign suite",
    },
    EnvKnob {
        name: "LGFI_SLO_CHURN_CYCLES",
        default: 3_000,
        doc: "horizon (cycles) of the long-horizon churn equivalence/alloc tests",
    },
    EnvKnob {
        name: "LGFI_READERS",
        default: 4,
        doc: "top reader count of the exp_route_service sweep",
    },
    EnvKnob {
        name: "LGFI_RS_QUERIES",
        default: 51_200,
        doc: "target queries per exp_route_service measurement",
    },
    EnvKnob {
        name: "LGFI_VCS",
        default: 2,
        doc: "virtual channels per directed link for the wormhole experiments",
    },
    EnvKnob {
        name: "LGFI_FLITS",
        default: 4,
        doc: "flits per packet (worm length) for the wormhole experiments",
    },
];

/// Looks `name` up in [`ENV_KNOBS`] and parses its value from the environment:
/// unset or empty means the registered default, anything else must be an integer.
///
/// # Panics
/// Panics when `name` is not registered in [`ENV_KNOBS`] (register it — the
/// registry is the single source of knob defaults and documentation) or when the
/// variable is set to something that is not an integer.
pub fn knob(name: &str) -> usize {
    let entry = ENV_KNOBS
        .iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unregistered knob {name:?} — add it to ENV_KNOBS"));
    parse_knob(
        entry.name,
        std::env::var(entry.name).ok().as_deref(),
        entry.default,
    )
}

/// The generated knob listing every experiment binary prints under `--help`:
/// one line per [`ENV_KNOBS`] entry plus the non-numeric knobs.
pub fn knobs_help() -> String {
    let mut out = String::from("Environment knobs:\n");
    for k in ENV_KNOBS {
        out.push_str(&format!(
            "  {:<24} {} [default: {}]\n",
            k.name, k.doc, k.default
        ));
    }
    out.push_str(
        "  LGFI_FRONTIER            active-frontier scheduling; 0/false/off disables [default: on]\n",
    );
    out.push_str("  LGFI_BENCH_JSON          output path for machine-readable bench records\n");
    out.push_str("  LGFI_BENCH_VARIANT       variant tag stamped into emitted bench records\n");
    out
}

/// Handles `--help`/`-h` for an experiment binary: prints a usage line plus the
/// generated [`knobs_help`] listing and returns `true` (the caller should exit).
pub fn print_help_if_requested(binary: &str, about: &str) -> bool {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{binary} — {about}\n");
        println!("Usage: {binary} [--threads N]\n");
        print!("{}", knobs_help());
        true
    } else {
        false
    }
}

/// The parsing rule of [`knob`], separated from the environment lookup so it is
/// testable without mutating process-global state.
fn parse_knob(name: &str, value: Option<&str>, default: usize) -> usize {
    match value {
        Some(s) if !s.trim().is_empty() => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {s:?}")),
        _ => default,
    }
}

/// The worker-thread count for the information rounds (`LGFI_THREADS`); see
/// [`knob`].
pub fn configured_threads() -> usize {
    knob("LGFI_THREADS")
}

/// The probe-sweep worker count (`LGFI_PROBE_THREADS`); see [`knob`].
pub fn configured_probe_threads() -> usize {
    knob("LGFI_PROBE_THREADS")
}

/// The traffic decision-worker count (`LGFI_TRAFFIC_THREADS`); see [`knob`].
pub fn configured_traffic_threads() -> usize {
    knob("LGFI_TRAFFIC_THREADS")
}

/// Virtual channels per directed link for the wormhole experiments
/// (`LGFI_VCS`); see [`knob`].
pub fn configured_vcs() -> u32 {
    knob("LGFI_VCS").max(1) as u32
}

/// Flits per packet for the wormhole experiments (`LGFI_FLITS`); see [`knob`].
pub fn configured_flits() -> u32 {
    knob("LGFI_FLITS").max(1) as u32
}

/// The active-frontier knob configured through the environment: `LGFI_FRONTIER`
/// unset or empty means on (the default), `0`/`false`/`off` disables it (full
/// per-round evaluation).  Like `LGFI_THREADS`, scheduling never changes results —
/// every experiment output is bit-identical across settings.
pub fn configured_frontier() -> bool {
    match std::env::var("LGFI_FRONTIER") {
        Ok(s) => !matches!(s.trim(), "0" | "false" | "off"),
        _ => true,
    }
}

/// The worker-thread count for an experiment binary: a `--threads N` command-line
/// argument wins, then the `LGFI_THREADS` environment variable, then serial.
/// `N = 0` means one worker per available core.
pub fn cli_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--threads=") {
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--threads takes an integer, got {v:?}"));
        }
        if a == "--threads" {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--threads takes an integer argument"));
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--threads takes an integer, got {v:?}"));
        }
    }
    configured_threads()
}

/// Picks the sweep-level worker count for an experiment whose per-trial engines run
/// with `engine_threads` workers: the two levels multiply, so the sweep gets the
/// cores left over after each trial's engine claims its share (at least one sweep
/// worker; `0` = one sweep worker per core when the engines are serial).
fn sweep_workers(engine_threads: usize) -> usize {
    if engine_threads == 1 {
        0 // one sweep worker per core, engines serial — the historical default
    } else {
        let cores = lgfi_sim::resolve_threads(0);
        (cores / engine_threads).max(1)
    }
}

/// The fault set of Figure 1 of the paper: four faults in a 3-D mesh whose block is
/// `[3:5, 5:6, 3:4]`.
pub fn figure1_faults() -> Vec<Coord> {
    vec![
        coord![3, 5, 4],
        coord![4, 5, 4],
        coord![5, 5, 3],
        coord![3, 6, 3],
    ]
}

fn figure1_setup() -> (Mesh, LabelingEngine, BlockSet) {
    let mesh = Mesh::cubic(10, 3);
    let mut eng = LabelingEngine::new(mesh.clone());
    eng.apply_faults(&figure1_faults());
    let blocks = BlockSet::extract(&mesh, eng.statuses());
    (mesh, eng, blocks)
}

// ---------------------------------------------------------------------------------
// F1 — Figure 1: faulty block construction
// ---------------------------------------------------------------------------------

/// Experiment F1: reproduce Figure 1 — the faulty block formed by four faults in a
/// 3-D mesh, plus the per-round growth of the disabled set.
pub fn exp_fig1_block() -> String {
    let mesh = Mesh::cubic(10, 3);
    let mut eng = LabelingEngine::new(mesh.clone());
    for f in figure1_faults() {
        eng.inject_fault_coord(&f);
    }
    let mut table = Table::new(
        "F1  Figure 1: block construction for faults (3,5,4) (4,5,4) (5,5,3) (3,6,3) in a 10^3 mesh",
        &["round", "faulty", "disabled", "changes"],
    );
    let mut round = 0u64;
    loop {
        let (f, d, _, _) = eng.census();
        let changes = eng.run_round();
        round += 1;
        table.row(&[
            round.to_string(),
            f.to_string(),
            d.to_string(),
            changes.to_string(),
        ]);
        if changes == 0 {
            break;
        }
    }
    let blocks = BlockSet::extract(&mesh, eng.statuses());
    let block = &blocks.blocks()[0];
    let mut summary = Table::new("F1  resulting block", &["property", "value"]);
    summary.row(&["block extent".into(), format!("{}", block.region)]);
    summary.row(&["paper's extent".into(), "[3:5, 5:6, 3:4]".into()]);
    summary.row(&["nodes in block".into(), block.size().to_string()]);
    summary.row(&["rectangular".into(), block.is_rectangular().to_string()]);
    summary.row(&["a_i (rounds to stabilise)".into(), eng.rounds().to_string()]);
    format!("{table}\n{summary}")
}

// ---------------------------------------------------------------------------------
// F2 — Figure 2: corners and edge nodes
// ---------------------------------------------------------------------------------

/// Experiment F2: reproduce Figure 2 — the 3-level corner (6,4,5), its edge neighbors,
/// and the population of every frame level.
pub fn exp_fig2_corners() -> String {
    let (mesh, _eng, blocks) = figure1_setup();
    let frame = BlockFrame::of_block(&mesh, &blocks.blocks()[0]);
    let mut table = Table::new(
        "F2  Figure 2: frame of block [3:5, 5:6, 3:4]",
        &["level", "meaning", "count", "example"],
    );
    let names = [
        "adjacent node",
        "2-level corner / 3-level edge node",
        "3-level corner",
    ];
    for level in 1..=3usize {
        let nodes = frame.nodes_at_level(level);
        let example = nodes
            .iter()
            .map(|&id| mesh.coord_of(id))
            .find(|c| *c == coord![6, 4, 5] || level != 3)
            .map(|c| format!("{c}"))
            .unwrap_or_default();
        table.row(&[
            level.to_string(),
            names[level - 1].to_string(),
            nodes.len().to_string(),
            example,
        ]);
    }
    let mut example = Table::new(
        "F2  the paper's worked example around corner (6,4,5)",
        &["node", "role level (paper)", "role level (measured)"],
    );
    for (c, expected) in [
        (coord![6, 4, 5], 3usize),
        (coord![5, 4, 5], 2),
        (coord![6, 5, 5], 2),
        (coord![6, 4, 4], 2),
        (coord![5, 5, 5], 1),
        (coord![5, 4, 4], 1),
    ] {
        let level = frame
            .role_of(mesh.id_of(&c))
            .map(|r| r.level())
            .unwrap_or(0);
        example.row(&[format!("{c}"), expected.to_string(), level.to_string()]);
    }
    format!("{table}\n{example}")
}

// ---------------------------------------------------------------------------------
// F3 — Figure 3: boundaries
// ---------------------------------------------------------------------------------

/// Experiment F3: reproduce Figure 3 — the boundary of the Figure-1 block for every
/// adjacent surface, and the merge of a boundary into a second block.
pub fn exp_fig3_boundaries() -> String {
    let (mesh, _eng, blocks) = figure1_setup();
    let map = BoundaryMap::construct(&mesh, &blocks);
    let mut table = Table::new(
        "F3  Figure 3: boundaries of block [3:5, 5:6, 3:4] in a 10^3 mesh",
        &[
            "surface",
            "guard dir",
            "boundary nodes",
            "max arrival offset (rounds)",
        ],
    );
    for guard in Direction::all(3) {
        let nodes = map.boundary_nodes(0, guard);
        let max_offset = nodes
            .iter()
            .flat_map(|&id| {
                map.entries(id)
                    .iter()
                    .filter(|e| e.guard == guard)
                    .map(|e| e.arrival_offset)
            })
            .max()
            .unwrap_or(0);
        table.row(&[
            format!("S{}", guard.surface_index(3)),
            format!("{guard}"),
            nodes.len().to_string(),
            max_offset.to_string(),
        ]);
    }

    // The two-block merge of Figure 3 (d), in 2-D for readability.
    let mesh2 = Mesh::cubic(14, 2);
    let mut eng2 = LabelingEngine::new(mesh2.clone());
    eng2.apply_faults(&[
        coord![5, 9],
        coord![6, 10],
        coord![5, 10],
        coord![6, 9],
        coord![4, 4],
        coord![5, 5],
        coord![4, 5],
        coord![5, 4],
    ]);
    let blocks2 = BlockSet::extract(&mesh2, eng2.statuses());
    let map2 = BoundaryMap::construct(&mesh2, &blocks2);
    let upper = blocks2
        .blocks()
        .iter()
        .find(|b| b.region.lo()[1] == 9)
        .expect("upper block");
    let nodes = map2.boundary_nodes(upper.id, Direction::pos(1));
    let below_second_block = nodes
        .iter()
        .map(|&id| mesh2.coord_of(id))
        .filter(|c| c[1] < 4)
        .count();
    let mut merge = Table::new(
        "F3(d)  boundary of block A [5:6,9:10] for S_{+Y} merging into block B [4:5,4:5] (14x14 mesh)",
        &["quantity", "value"],
    );
    merge.row(&["boundary nodes of A for +Y".into(), nodes.len().to_string()]);
    merge.row(&[
        "of which below block B (merged continuation)".into(),
        below_second_block.to_string(),
    ]);
    merge.row(&[
        "c (boundary construction rounds)".into(),
        map2.construction_rounds().to_string(),
    ]);
    format!("{table}\n{merge}")
}

// ---------------------------------------------------------------------------------
// F4 — Figure 4: recovery
// ---------------------------------------------------------------------------------

/// Experiment F4: reproduce Figure 4 — recovery of node (5,5,3), the clean wave, and
/// the shrunken block.
pub fn exp_fig4_recovery() -> String {
    let mesh = Mesh::cubic(10, 3);
    let mut eng = LabelingEngine::new(mesh.clone());
    eng.apply_faults(&figure1_faults());
    eng.recover_coord(&coord![5, 5, 3]);
    let watched = [
        coord![5, 5, 3],
        coord![4, 5, 3],
        coord![5, 6, 3],
        coord![5, 5, 4],
        coord![3, 5, 3],
    ];
    let mut table = Table::new(
        "F4  Figure 4: statuses after the recovery of (5,5,3)",
        &[
            "round", "(5,5,3)", "(4,5,3)", "(5,6,3)", "(5,5,4)", "(3,5,3)",
        ],
    );
    let row = |round: u64, eng: &LabelingEngine| {
        let cells: Vec<String> = std::iter::once(round.to_string())
            .chain(watched.iter().map(|c| eng.status_at(c).to_string()))
            .collect();
        cells
    };
    table.row(&row(0, &eng));
    for round in 1..=12u64 {
        let changes = eng.run_round();
        table.row(&row(round, &eng));
        if changes == 0 {
            break;
        }
    }
    let blocks = BlockSet::extract(&mesh, eng.statuses());
    let mut summary = Table::new(
        "F4  stabilised blocks after recovery",
        &["property", "value"],
    );
    summary.row(&["number of blocks".into(), blocks.len().to_string()]);
    summary.row(&[
        "block extent".into(),
        format!("{}", blocks.blocks()[0].region),
    ]);
    summary.row(&["expected (shrunken)".into(), "[3:4, 5:6, 3:4]".into()]);
    format!("{table}\n{summary}")
}

// ---------------------------------------------------------------------------------
// F5 — Figures 5 and 6: identification
// ---------------------------------------------------------------------------------

/// Experiment F5: reproduce Figures 5–6 — the three-phase identification process from
/// corner (6,4,5) and the back-propagation of the identified information, plus how the
/// round counts scale with the block size and dimension.
pub fn exp_fig5_identification() -> String {
    let (mesh, eng, blocks) = figure1_setup();
    let ident = IdentificationProcess::default();
    let outcome = ident.run(
        &mesh,
        &blocks.blocks()[0].region,
        eng.statuses(),
        &coord![6, 4, 5],
    );
    let mut table = Table::new(
        "F5  Figures 5-6: identification of block [3:5, 5:6, 3:4] from corner (6,4,5)",
        &["quantity", "value"],
    );
    table.row(&[
        "initialization corner".into(),
        format!("{}", outcome.init_corner),
    ]);
    table.row(&[
        "opposite corner".into(),
        format!("{}", outcome.opposite_corner),
    ]);
    table.row(&["stable".into(), outcome.stable.to_string()]);
    table.row(&[
        "rounds until block info formed at opposite corner".into(),
        outcome.formed_round.to_string(),
    ]);
    table.row(&[
        "rounds until every frame node holds the info (b_i)".into(),
        outcome.completed_round.to_string(),
    ]);
    table.row(&[
        "frame nodes holding the info".into(),
        outcome.info_arrival.len().to_string(),
    ]);
    table.row(&["message hops".into(), outcome.message_hops.to_string()]);

    let mut scaling = Table::new(
        "F5  identification rounds vs. block extent (level_duration)",
        &["block extent", "dimension", "formed (rounds)"],
    );
    for extents in [
        vec![2, 2],
        vec![4, 4],
        vec![8, 8],
        vec![2, 2, 2],
        vec![3, 2, 2],
        vec![4, 4, 4],
        vec![8, 8, 8],
        vec![3, 3, 3, 3],
        vec![4, 4, 4, 4, 4],
    ] {
        let t = IdentificationProcess::level_duration(&extents);
        scaling.row(&[
            format!("{extents:?}"),
            extents.len().to_string(),
            t.to_string(),
        ]);
    }
    format!("{table}\n{scaling}")
}

// ---------------------------------------------------------------------------------
// F7 — Figure 7: the step model
// ---------------------------------------------------------------------------------

/// Experiment F7: the Figure-7 step structure — how many steps it takes for the
/// information of a new block to reach the far end of its boundary as a function of λ,
/// and the phase structure of a step.
pub fn exp_fig7_steps() -> String {
    exp_fig7_steps_with(configured_threads())
}

/// [`exp_fig7_steps`] with an explicit worker-thread count for the information
/// rounds (bit-identical output for every setting).
pub fn exp_fig7_steps_with(threads: usize) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let mesh = Mesh::cubic(12, 2);
    let faults = [coord![5, 6], coord![6, 7], coord![5, 7], coord![6, 6]];
    let ids: Vec<usize> = faults.iter().map(|c| mesh.id_of(c)).collect();
    let observer = mesh.id_of(&coord![4, 0]);
    let mut table = Table::new(
        &format!("F7  Figure 7: steps until a distant boundary node (4,0) learns of block [5:6,6:7] (12x12 mesh, threads={threads})"),
        &["lambda (rounds/step)", "steps until visible", "total info rounds"],
    );
    for lambda in [1u64, 2, 4, 8] {
        let plan = FaultPlan::static_faults(&ids);
        let mut net = LgfiNetwork::new(
            mesh.clone(),
            plan,
            NetworkConfig {
                lambda,
                max_probe_steps: 10_000,
                threads,
                frontier: configured_frontier(),
                probe_threads: configured_probe_threads(),
            },
        );
        let mut steps = 0u64;
        while net.visible_info(observer).is_empty() && steps < 1_000 {
            net.run_step();
            steps += 1;
        }
        table.row(&[
            lambda.to_string(),
            steps.to_string(),
            net.round().to_string(),
        ]);
    }
    let mut phases = Table::new("F7  actions within a step", &["order", "phase"]);
    for (i, phase) in lgfi_sim::StepPhase::all().iter().enumerate() {
        phases.row(&[(i + 1).to_string(), format!("{phase:?}")]);
    }
    format!("{table}\n{phases}")
}

// ---------------------------------------------------------------------------------
// T2 — Theorem 2: safe sources
// ---------------------------------------------------------------------------------

/// Experiment T2: Theorem 2 — every route from a safe source under static faults is
/// minimal.
pub fn exp_thm2_safety() -> String {
    let mut table = Table::new(
        "T2  Theorem 2: routes from safe sources are minimal (static faults, LGFI router)",
        &[
            "mesh",
            "faults",
            "pairs",
            "safe pairs",
            "minimal among safe",
            "violations",
        ],
    );
    for (dims, fault_count) in [(vec![12, 12], 8), (vec![16, 16], 16), (vec![8, 8, 8], 20)] {
        let mesh = Mesh::new(&dims);
        let mut violations = 0usize;
        let mut safe_pairs = 0usize;
        let mut minimal = 0usize;
        let mut pairs = 0usize;
        for seed in 0..10u64 {
            let mut generator = FaultGenerator::new(mesh.clone(), seed);
            let faults = generator.place(fault_count, FaultPlacement::UniformInterior);
            let mut eng = LabelingEngine::new(mesh.clone());
            eng.apply_faults(&faults);
            let blocks = BlockSet::extract(&mesh, eng.statuses());
            let boundary = BoundaryMap::construct(&mesh, &blocks);
            let mut traffic =
                TrafficGenerator::new(mesh.clone(), TrafficPattern::UniformRandom, seed);
            let statuses = eng.statuses().to_vec();
            for req in traffic.requests(30, |id| statuses[id] == NodeStatus::Enabled) {
                pairs += 1;
                let s = mesh.coord_of(req.source);
                let d = mesh.coord_of(req.dest);
                if !is_safe_source_in(&s, &d, &blocks) {
                    continue;
                }
                safe_pairs += 1;
                let out = route_static(
                    &mesh,
                    eng.statuses(),
                    blocks.blocks(),
                    &boundary,
                    &LgfiRouter::new(),
                    req.source,
                    req.dest,
                    100_000,
                );
                if out.delivered() && out.detours() == Some(0) {
                    minimal += 1;
                } else {
                    violations += 1;
                }
            }
        }
        table.row(&[
            format!("{dims:?}"),
            fault_count.to_string(),
            pairs.to_string(),
            safe_pairs.to_string(),
            minimal.to_string(),
            violations.to_string(),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// T3 / T4 / T5 — dynamic detour bounds
// ---------------------------------------------------------------------------------

struct DynamicRun {
    report: lgfi_core::network::ProbeReport,
    bound: lgfi_core::bounds::DetourBound,
}

fn run_dynamic_probes(
    dims: &[i32],
    fault_count: usize,
    interval: u64,
    seeds: u64,
) -> Vec<DynamicRun> {
    let inputs: Vec<u64> = (0..seeds).collect();
    let dims = dims.to_vec();
    let results = run_trials(inputs, move |&seed| {
        let mesh = Mesh::new(&dims);
        let mut generator = FaultGenerator::new(mesh.clone(), seed);
        // Clustered placement so the dynamically appearing faults grow into blocks
        // that can actually stand in the probe's way: isolated single faults are
        // routed around for free by any adaptive router.
        let plan = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count,
                first_step: 5,
                interval,
                with_recovery: false,
                recovery_delay: 0,
            },
            FaultPlacement::Clustered {
                clusters: (fault_count / 4).max(1),
            },
        );
        let mut net = LgfiNetwork::new(mesh.clone(), plan, NetworkConfig::default());
        // Launch a corner-to-corner probe at step 0 so it is in flight while the
        // faults appear.
        let source = mesh.id_of(&Coord::origin(mesh.ndim()));
        let dest = mesh.id_of(&Coord::new(
            mesh.dims().iter().map(|&k| k - 1).collect::<Vec<i32>>(),
        ));
        net.launch_probe(source, dest, Box::new(LgfiRouter::new()));
        net.run_to_completion(50_000);
        let report = net.reports()[0].clone();
        let bound = net.detour_bound_for(report.launched_at);
        (report, bound)
    });
    results
        .into_iter()
        .map(|p| DynamicRun {
            report: p.output.0,
            bound: p.output.1,
        })
        .collect()
}

/// Experiment T3: Theorem 3 — the measured D(i) at every fault occurrence respects the
/// per-interval progress bound.
pub fn exp_thm3_progress() -> String {
    let runs = run_dynamic_probes(&[24, 24], 8, 10, 12);
    let mut table = Table::new(
        "T3  Theorem 3: remaining distance D(i) at each fault occurrence vs. bound (24x24, 8 clustered dynamic faults, d_i=10)",
        &["seed", "delivered", "D", "D(i) series", "bound holds"],
    );
    for (seed, run) in runs.iter().enumerate() {
        let checks = check_theorem3(&run.report, &run.bound);
        let holds = checks.iter().all(|c| c.holds);
        let series: Vec<String> = run
            .report
            .distance_at_fault
            .values()
            .map(|d| d.to_string())
            .collect();
        table.row(&[
            seed.to_string(),
            run.report.outcome.delivered().to_string(),
            run.report.outcome.initial_distance.to_string(),
            series.join(","),
            holds.to_string(),
        ]);
    }
    table.render()
}

/// Experiment T4: Theorem 4 — measured steps and detours vs. the `k (e_max + a_max)`
/// bound for routes from (safe) corner sources under dynamic faults.
pub fn exp_thm4_detours() -> String {
    let mut table = Table::new(
        "T4  Theorem 4: measured detours vs. bound (corner-to-corner probes under dynamic faults)",
        &[
            "mesh",
            "faults",
            "interval",
            "delivered",
            "mean detours",
            "max detours",
            "max allowed",
            "bound holds",
        ],
    );
    for (dims, fault_count, interval) in [
        (vec![16, 16], 4, 8),
        (vec![16, 16], 8, 8),
        (vec![24, 24], 8, 12),
        (vec![24, 24], 12, 6),
        (vec![10, 10, 10], 8, 8),
    ] {
        let runs = run_dynamic_probes(&dims, fault_count, interval, 10);
        let delivered = runs.iter().filter(|r| r.report.outcome.delivered()).count();
        let detours: Vec<u64> = runs
            .iter()
            .filter_map(|r| r.report.outcome.detours())
            .collect();
        let all_hold = runs
            .iter()
            .all(|r| check_theorem4(&r.report, &r.bound).holds);
        let max_allowed = runs
            .iter()
            .map(|r| {
                r.bound
                    .max_detours(u64::from(r.report.outcome.initial_distance))
            })
            .max()
            .unwrap_or(0);
        let s = Summary::of_u64(&detours);
        table.row(&[
            format!("{dims:?}"),
            fault_count.to_string(),
            interval.to_string(),
            format!("{delivered}/{}", runs.len()),
            f2(s.mean),
            s.max.to_string(),
            max_allowed.to_string(),
            all_hold.to_string(),
        ]);
    }
    table.render()
}

/// Experiment T5: Theorem 5 — the same bound applied to *unsafe* sources (pairs whose
/// bounding box intersects a block at launch time).
pub fn exp_thm5_unsafe() -> String {
    let mut table = Table::new(
        "T5  Theorem 5: unsafe sources under dynamic faults (16x16 mesh)",
        &[
            "seed",
            "safe at launch",
            "delivered",
            "steps",
            "bound (L-based)",
            "holds",
        ],
    );
    for seed in 0..10u64 {
        let mesh = Mesh::cubic(16, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 100 + seed);
        // Static block in the middle plus dynamic faults later.
        let mut plan = generator.static_plan(6, FaultPlacement::Clustered { clusters: 1 });
        let dynamic = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count: 2,
                first_step: 20,
                interval: 60,
                with_recovery: false,
                recovery_delay: 0,
            },
            FaultPlacement::UniformInterior,
        );
        for e in dynamic.events() {
            plan.push(*e);
        }
        if !plan.validate(&mesh).is_empty() {
            continue;
        }
        let mut net = LgfiNetwork::new(mesh.clone(), plan, NetworkConfig::default());
        // Let the static block stabilise, then launch a probe straight across it.
        for _ in 0..15 {
            net.run_step();
        }
        let source = mesh.id_of(&coord![0, 7]);
        let dest = mesh.id_of(&coord![15, 8]);
        if net.statuses()[source] != NodeStatus::Enabled
            || net.statuses()[dest] != NodeStatus::Enabled
        {
            continue;
        }
        let safe = is_safe_source_in(&mesh.coord_of(source), &mesh.coord_of(dest), net.blocks());
        net.launch_probe(source, dest, Box::new(LgfiRouter::new()));
        net.run_to_completion(50_000);
        let report = net.reports()[0].clone();
        let bound = net.detour_bound_for(report.launched_at);
        // Theorem 5 uses the length L of an existing path; the shortest detour path is
        // at most D + half the block perimeter, so use the measured path length as L.
        let l = report
            .outcome
            .path_length
            .max(u64::from(report.outcome.initial_distance));
        let allowed = bound.max_steps(l);
        table.row(&[
            seed.to_string(),
            safe.to_string(),
            report.outcome.delivered().to_string(),
            report.outcome.steps.to_string(),
            allowed.to_string(),
            (report.outcome.steps <= allowed).to_string(),
        ]);
    }
    table.render()
}

/// Experiment T1: Theorem 1 — fault recovery constructions do not hurt routing: the
/// same source/destination pair needs no more steps after a recovery re-stabilises
/// than before it.
pub fn exp_thm1_recovery() -> String {
    let mut table = Table::new(
        "T1  Theorem 1: routing before vs. after a recovery (12x12 mesh, block shrinks)",
        &[
            "pair",
            "steps with full block",
            "steps after recovery",
            "recovery not worse",
        ],
    );
    let mesh = Mesh::cubic(12, 2);
    let faults = [
        coord![5, 5],
        coord![6, 6],
        coord![5, 6],
        coord![6, 5],
        coord![7, 5],
        coord![7, 6],
    ];
    let mut eng = LabelingEngine::new(mesh.clone());
    eng.apply_faults(&faults);
    let blocks_before = BlockSet::extract(&mesh, eng.statuses());
    let boundary_before = BoundaryMap::construct(&mesh, &blocks_before);
    let statuses_before = eng.statuses().to_vec();
    // Recover two faults: the block shrinks.
    eng.apply_recoveries(&[coord![7, 5], coord![7, 6]]);
    let blocks_after = BlockSet::extract(&mesh, eng.statuses());
    let boundary_after = BoundaryMap::construct(&mesh, &blocks_after);
    for (s, d) in [
        (coord![5, 1], coord![6, 10]),
        (coord![1, 5], coord![10, 6]),
        (coord![0, 0], coord![11, 11]),
        (coord![6, 0], coord![6, 11]),
    ] {
        let before = route_static(
            &mesh,
            &statuses_before,
            blocks_before.blocks(),
            &boundary_before,
            &LgfiRouter::new(),
            mesh.id_of(&s),
            mesh.id_of(&d),
            10_000,
        );
        let after = route_static(
            &mesh,
            eng.statuses(),
            blocks_after.blocks(),
            &boundary_after,
            &LgfiRouter::new(),
            mesh.id_of(&s),
            mesh.id_of(&d),
            10_000,
        );
        table.row(&[
            format!("{s} -> {d}"),
            before.steps.to_string(),
            after.steps.to_string(),
            lgfi_core::bounds::recovery_does_not_increase_detours(before.steps, after.steps)
                .to_string(),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// C1 — convergence of the fault information constructions
// ---------------------------------------------------------------------------------

/// Experiment C1: the claim that "fault information can be distributed quickly" —
/// `a_i`, `b_i`, `c_i` as a function of mesh size, dimension and fault-cluster size.
pub fn exp_convergence() -> String {
    exp_convergence_with(configured_threads())
}

/// [`exp_convergence`] with an explicit worker-thread count for the labeling rounds;
/// engine parallelism > 1 shrinks the outer seed sweep to the cores left over so the
/// machine is not oversubscribed.  Output numbers are bit-identical for every setting.
pub fn exp_convergence_with(threads: usize) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let mut table = Table::new(
        &format!("C1  convergence rounds of the fault-information constructions (mean over 8 seeds, threads={threads})"),
        &[
            "mesh",
            "faults per cluster",
            "a (labeling)",
            "b (identification)",
            "c (boundary)",
            "diameter",
        ],
    );
    for (dims, cluster) in [
        (vec![12, 12], 4usize),
        (vec![24, 24], 4),
        (vec![48, 48], 4),
        (vec![12, 12], 9),
        (vec![24, 24], 9),
        (vec![10, 10, 10], 4),
        (vec![10, 10, 10], 8),
        (vec![16, 16, 16], 8),
        (vec![8, 8, 8, 8], 8),
    ] {
        let mesh = Mesh::new(&dims);
        let inputs: Vec<u64> = (0..8).collect();
        let dims_clone = dims.clone();
        let points = run_trials_on(sweep_workers(threads), inputs, move |&seed| {
            let mesh = Mesh::new(&dims_clone);
            let mut generator = FaultGenerator::new(mesh.clone(), seed);
            let faults = generator.place(cluster, FaultPlacement::Clustered { clusters: 1 });
            let mut eng = LabelingEngine::new(mesh.clone())
                .with_threads(threads)
                .with_frontier(configured_frontier());
            let a = eng.apply_faults(&faults);
            let blocks = BlockSet::extract(&mesh, eng.statuses());
            let ident = IdentificationProcess::default();
            let b = blocks
                .blocks()
                .iter()
                .filter_map(|blk| {
                    ident
                        .run_from_default_corner(&mesh, &blk.region, eng.statuses())
                        .filter(|o| o.stable)
                        .map(|o| o.completed_round)
                })
                .max()
                .unwrap_or(0);
            let boundary = BoundaryMap::construct(&mesh, &blocks);
            let c = boundary.construction_rounds();
            (a as f64, b as f64, c as f64)
        });
        let a = Summary::of(&points.iter().map(|p| p.output.0).collect::<Vec<_>>());
        let b = Summary::of(&points.iter().map(|p| p.output.1).collect::<Vec<_>>());
        let c = Summary::of(&points.iter().map(|p| p.output.2).collect::<Vec<_>>());
        table.row(&[
            format!("{dims:?}"),
            cluster.to_string(),
            f2(a.mean),
            f2(b.mean),
            f2(c.mean),
            mesh.diameter().to_string(),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// C2 — graceful degradation / router comparison
// ---------------------------------------------------------------------------------

/// Instantiates a comparison router by its reported name (the names used in
/// experiment tables and `BENCH_engine.json` records).
///
/// # Panics
/// Panics on an unknown name.
pub fn router_by_name(name: &str) -> Box<dyn Router> {
    match name {
        "lgfi" => Box::new(LgfiRouter::new()),
        "global-info" => Box::new(GlobalInfoRouter::new()),
        "local-only" => Box::new(LocalInfoRouter::new()),
        "dimension-order" => Box::new(DimensionOrderRouter::new()),
        "wu-minimal-block" => Box::new(StaticBlockRouter::new()),
        other => panic!("unknown router {other}"),
    }
}

/// Experiment C2: the claim that "the performance of the routing process degrades
/// gracefully" — delivery ratio, mean detours and stretch for every router as the
/// number of dynamic faults grows.
pub fn exp_graceful_degradation() -> String {
    exp_graceful_degradation_with(configured_threads())
}

/// [`exp_graceful_degradation`] with an explicit worker-thread count for the
/// per-scenario information rounds (bit-identical output for every setting).
pub fn exp_graceful_degradation_with(threads: usize) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let routers = [
        "lgfi",
        "global-info",
        "local-only",
        "wu-minimal-block",
        "dimension-order",
    ];
    let fault_counts = [0usize, 8, 16, 32, 48];
    let mut table = Table::new(
        &format!("C2  routing under an increasing number of clustered dynamic faults (16x16 mesh, 20 probes x 6 seeds, uniform traffic, threads={threads})"),
        &["router", "faults", "delivery", "mean detours", "mean stretch"],
    );
    for router in routers {
        for &faults in &fault_counts {
            let inputs: Vec<u64> = (0..6).collect();
            let points = run_trials_on(sweep_workers(threads), inputs, move |&seed| {
                let scenario = Scenario {
                    dims: vec![16, 16],
                    seed,
                    fault_count: faults,
                    placement: FaultPlacement::Clustered {
                        clusters: (faults / 8).max(1),
                    },
                    dynamic: Some(DynamicFaultConfig {
                        fault_count: faults,
                        first_step: 0,
                        interval: 4,
                        with_recovery: false,
                        recovery_delay: 0,
                    }),
                    lambda: 1,
                    traffic: TrafficPattern::UniformRandom,
                    messages: 20,
                    launch_step: 10,
                    max_steps: 100_000,
                    threads,
                    frontier: configured_frontier(),
                    probe_threads: configured_probe_threads(),
                    traffic_threads: configured_traffic_threads(),
                };
                let result = scenario.run(&|| router_by_name(router));
                (
                    result.delivery_ratio(),
                    result.mean_detours(),
                    result.mean_stretch(),
                )
            });
            let delivery = Summary::of(&points.iter().map(|p| p.output.0).collect::<Vec<_>>());
            let detours = Summary::of(&points.iter().map(|p| p.output.1).collect::<Vec<_>>());
            let stretch = Summary::of(&points.iter().map(|p| p.output.2).collect::<Vec<_>>());
            table.row(&[
                router.to_string(),
                faults.to_string(),
                pct(delivery.mean),
                f2(detours.mean),
                f2(stretch.mean),
            ]);
        }
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// C3 — memory overhead
// ---------------------------------------------------------------------------------

/// Experiment C3: the claim that the model "reduces the memory requirement to store
/// fault information in the whole network" — limited-global records vs. the global
/// model.
pub fn exp_memory_overhead() -> String {
    let mut table = Table::new(
        "C3  information placement vs. the global model (mean over 6 seeds)",
        &[
            "mesh",
            "faults",
            "nodes with info",
            "coverage",
            "records (limited)",
            "records (global)",
            "ratio",
        ],
    );
    for (dims, faults) in [
        (vec![16, 16], 8usize),
        (vec![32, 32], 8),
        (vec![32, 32], 32),
        (vec![10, 10, 10], 12),
        (vec![16, 16, 16], 24),
    ] {
        let inputs: Vec<u64> = (0..6).collect();
        let dims_clone = dims.clone();
        let points = run_trials(inputs, move |&seed| {
            let mesh = Mesh::new(&dims_clone);
            let mut generator = FaultGenerator::new(mesh.clone(), seed);
            let fs = generator.place(faults, FaultPlacement::UniformInterior);
            let mut eng = LabelingEngine::new(mesh.clone());
            eng.apply_faults(&fs);
            let blocks = BlockSet::extract(&mesh, eng.statuses());
            let boundary = BoundaryMap::construct(&mesh, &blocks);
            let store = InfoStore::build(&mesh, &blocks, &boundary);
            let fp = store.footprint(&mesh, &blocks);
            (
                fp.nodes_with_info as f64,
                fp.coverage(),
                fp.limited_records as f64,
                fp.global_records as f64,
                fp.record_ratio(),
            )
        });
        let nodes = Summary::of(&points.iter().map(|p| p.output.0).collect::<Vec<_>>());
        let coverage = Summary::of(&points.iter().map(|p| p.output.1).collect::<Vec<_>>());
        let limited = Summary::of(&points.iter().map(|p| p.output.2).collect::<Vec<_>>());
        let global = Summary::of(&points.iter().map(|p| p.output.3).collect::<Vec<_>>());
        let ratio = Summary::of(&points.iter().map(|p| p.output.4).collect::<Vec<_>>());
        table.row(&[
            format!("{dims:?}"),
            faults.to_string(),
            f2(nodes.mean),
            pct(coverage.mean),
            f2(limited.mean),
            f2(global.mean),
            pct(ratio.mean),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// C4 — re-convergence under a stream of events
// ---------------------------------------------------------------------------------

/// Experiment C4: re-convergence of the information after each of a stream of fault
/// and recovery events (the "only affected nodes update" / no-oscillation claim).
pub fn exp_dynamic_convergence() -> String {
    exp_dynamic_convergence_with(configured_threads())
}

/// [`exp_dynamic_convergence`] with an explicit worker-thread count for the
/// information rounds (bit-identical output for every setting).
pub fn exp_dynamic_convergence_with(threads: usize) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let mesh = Mesh::cubic(16, 2);
    let mut generator = FaultGenerator::new(mesh.clone(), 7);
    let plan = generator.dynamic_plan(
        DynamicFaultConfig {
            fault_count: 8,
            first_step: 0,
            interval: 50,
            with_recovery: true,
            recovery_delay: 200,
        },
        FaultPlacement::UniformInterior,
    );
    let mut net = LgfiNetwork::new(
        mesh,
        plan,
        NetworkConfig {
            threads,
            frontier: configured_frontier(),
            ..NetworkConfig::default()
        },
    );
    net.run_to_completion(2_000);
    let mut table = Table::new(
        &format!("C4  per-disturbance convergence in a 16x16 mesh (8 dynamic faults, each later recovering, threads={threads})"),
        &[
            "disturbance step",
            "a (rounds)",
            "b (rounds)",
            "c (rounds)",
            "blocks changed",
        ],
    );
    for rec in net.convergence_records() {
        table.row(&[
            rec.step.to_string(),
            rec.a_rounds.to_string(),
            rec.b_rounds.to_string(),
            rec.c_rounds.to_string(),
            rec.blocks_changed.to_string(),
        ]);
    }
    let totals: Vec<u64> = net
        .convergence_records()
        .iter()
        .map(|c| c.total_rounds())
        .collect();
    let summary = Summary::of_u64(&totals);
    let mut stats = Table::new(
        "C4  summary of a+b+c per disturbance",
        &["mean", "max", "p95"],
    );
    stats.row(&[f2(summary.mean), f2(summary.max), f2(summary.p95)]);
    format!("{}\n{}", table.render(), stats.render())
}

// ---------------------------------------------------------------------------------
// C5 — concurrent traffic under contention
// ---------------------------------------------------------------------------------

/// The scenario of the C5 traffic experiment and the `traffic_saturation` bench: a
/// 16×16 mesh with 12 clustered static faults (stabilised before injection starts).
pub fn traffic_scenario(threads: usize, traffic_threads: usize) -> Scenario {
    Scenario {
        dims: vec![16, 16],
        seed: 21,
        fault_count: 12,
        placement: FaultPlacement::Clustered { clusters: 3 },
        dynamic: None,
        lambda: 1,
        traffic: TrafficPattern::UniformRandom,
        messages: 0,
        launch_step: 60,
        max_steps: 100_000,
        threads,
        frontier: configured_frontier(),
        probe_threads: configured_probe_threads(),
        traffic_threads,
    }
}

/// Experiment C5: concurrent traffic under link contention — delivery, accepted
/// throughput, and mean/p99 queueing latency for every router as the offered load
/// grows towards saturation.
pub fn exp_traffic() -> String {
    exp_traffic_with(configured_threads(), configured_traffic_threads())
}

/// [`exp_traffic`] with explicit worker counts for the information rounds and the
/// traffic decisions (bit-identical output for every setting).
pub fn exp_traffic_with(threads: usize, traffic_threads: usize) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let traffic_threads = lgfi_sim::resolve_threads(traffic_threads);
    let routers = [
        "lgfi",
        "global-info",
        "local-only",
        "wu-minimal-block",
        "dimension-order",
    ];
    let loads = [0.1f64, 0.5, 1.0, 2.0];
    let mut table = Table::new(
        &format!("C5  concurrent traffic vs. offered load (16x16 mesh, 12 clustered static faults, uniform traffic, 200 injection cycles, traffic_threads={traffic_threads})"),
        &[
            "router",
            "offered (pkt/cycle)",
            "delivery",
            "accepted (pkt/cycle)",
            "mean latency",
            "p99 latency",
            "mean stalls",
        ],
    );
    for router in routers {
        for &rate in &loads {
            let scenario = traffic_scenario(threads, traffic_threads);
            let result =
                scenario.run_traffic(TrafficSpec::at_rate(rate), &|| router_by_name(router));
            let s = TrafficSummary::of_records(&result.records, result.measured_cycles);
            table.row(&[
                router.to_string(),
                f2(rate),
                pct(s.delivery_ratio),
                f2(s.accepted_throughput),
                f2(s.mean_latency),
                s.p99_latency.to_string(),
                f2(s.mean_stalls),
            ]);
        }
    }
    table.render()
}

// ---------------------------------------------------------------------------------
// C8 — wormhole switching with virtual channels
// ---------------------------------------------------------------------------------

/// Experiment C8: flit-level wormhole traffic — delivery, accepted throughput,
/// queueing latency and deadlock teardowns for every router as multi-flit worms
/// contend for virtual channels and flit-buffer credits around the fault blocks.
/// `LGFI_FLITS` and `LGFI_VCS` set the worm length and channel count.
pub fn exp_wormhole() -> String {
    exp_wormhole_with(
        configured_threads(),
        configured_traffic_threads(),
        configured_flits(),
        configured_vcs(),
    )
}

/// [`exp_wormhole`] with explicit worker counts, worm length and VC count
/// (bit-identical output across the worker knobs).
pub fn exp_wormhole_with(threads: usize, traffic_threads: usize, flits: u32, vcs: u32) -> String {
    let threads = lgfi_sim::resolve_threads(threads);
    let traffic_threads = lgfi_sim::resolve_threads(traffic_threads);
    let routers = [
        "lgfi",
        "global-info",
        "local-only",
        "wu-minimal-block",
        "dimension-order",
    ];
    let loads = [0.1f64, 0.5, 1.0, 2.0];
    let mut table = Table::new(
        &format!(
            "C8  wormhole traffic vs. offered load (16x16 mesh, 12 clustered static faults, \
             {flits}-flit worms, {vcs} VCs + escape class, traffic_threads={traffic_threads})"
        ),
        &[
            "router",
            "offered (pkt/cycle)",
            "delivery",
            "accepted (pkt/cycle)",
            "mean latency",
            "p99 latency",
            "deadlocked",
        ],
    );
    for router in routers {
        for &rate in &loads {
            let scenario = traffic_scenario(threads, traffic_threads);
            let spec = TrafficSpec::at_rate(rate)
                .flits_per_packet(flits)
                .vc_count(vcs.max(2));
            let result = scenario.run_traffic(spec, &|| router_by_name(router));
            let s = TrafficSummary::of_records(&result.records, result.measured_cycles);
            table.row(&[
                router.to_string(),
                f2(rate),
                pct(s.delivery_ratio),
                f2(s.accepted_throughput),
                f2(s.mean_latency),
                s.p99_latency.to_string(),
                result.deadlocked().to_string(),
            ]);
        }
    }
    table.render()
}

/// Runs every experiment in order and returns the concatenated report (what the
/// `experiments` binary prints and what EXPERIMENTS.md records).
pub fn run_all_experiments() -> String {
    type Section = (&'static str, fn() -> String);
    let sections: Vec<Section> = vec![
        ("F1", exp_fig1_block),
        ("F2", exp_fig2_corners),
        ("F3", exp_fig3_boundaries),
        ("F4", exp_fig4_recovery),
        ("F5", exp_fig5_identification),
        ("F7", exp_fig7_steps),
        ("T1", exp_thm1_recovery),
        ("T2", exp_thm2_safety),
        ("T3", exp_thm3_progress),
        ("T4", exp_thm4_detours),
        ("T5", exp_thm5_unsafe),
        ("C1", exp_convergence),
        ("C2", exp_graceful_degradation),
        ("C3", exp_memory_overhead),
        ("C4", exp_dynamic_convergence),
        ("C5", exp_traffic),
        ("C6", crate::slo::exp_slo),
        ("C7", crate::route_service::exp_route_service),
        ("C8", exp_wormhole),
    ];
    let mut out = String::new();
    for (name, f) in sections {
        out.push_str(&format!(
            "\n############ experiment {name} ############\n\n"
        ));
        out.push_str(&f());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_experiments_produce_tables() {
        for f in [
            exp_fig1_block as fn() -> String,
            exp_fig2_corners,
            exp_fig3_boundaries,
            exp_fig4_recovery,
            exp_fig5_identification,
            exp_fig7_steps,
        ] {
            let s = f();
            assert!(
                s.contains("=="),
                "every experiment prints at least one table"
            );
            assert!(s.lines().count() > 4);
        }
    }

    #[test]
    fn theorem1_and_theorem2_experiments_report_no_violations() {
        let t1 = exp_thm1_recovery();
        assert!(!t1.contains("false"), "{t1}");
        let t2 = exp_thm2_safety();
        // The violations column must be all zeros.
        for line in t2.lines().skip(3) {
            if line.trim().is_empty() {
                continue;
            }
            let last = line.split_whitespace().last().unwrap();
            assert_eq!(last, "0", "violation reported in: {line}");
        }
    }

    #[test]
    fn threaded_experiment_variants_produce_identical_rows() {
        // Everything except the "threads=N" tag in the title must be bit-identical.
        let rows = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.contains("threads="))
                .map(String::from)
                .collect()
        };
        let serial = exp_dynamic_convergence_with(1);
        let parallel = exp_dynamic_convergence_with(3);
        assert_eq!(rows(&serial), rows(&parallel));
        let serial = exp_fig7_steps_with(1);
        let parallel = exp_fig7_steps_with(2);
        assert_eq!(rows(&serial), rows(&parallel));
    }

    #[test]
    fn thread_knob_defaults_to_serial() {
        if std::env::var("LGFI_THREADS").is_err() {
            assert_eq!(configured_threads(), 1);
            assert_eq!(cli_threads(), 1);
        }
    }

    #[test]
    fn knob_parsing_rule_is_shared_by_every_knob() {
        assert_eq!(parse_knob("K", None, 1), 1, "unset means the default");
        assert_eq!(parse_knob("K", Some(""), 2), 2, "empty means the default");
        assert_eq!(parse_knob("K", Some("   "), 3), 3);
        assert_eq!(parse_knob("K", Some("4"), 1), 4);
        assert_eq!(parse_knob("K", Some(" 8 "), 1), 8, "whitespace is trimmed");
        assert_eq!(parse_knob("K", Some("0"), 1), 0, "0 = one worker per core");
        if std::env::var("LGFI_TRAFFIC_THREADS").is_err() {
            assert_eq!(configured_traffic_threads(), 1);
        }
        if std::env::var("LGFI_PROBE_THREADS").is_err() {
            assert_eq!(configured_probe_threads(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "must be an integer")]
    fn knob_parsing_rejects_garbage() {
        parse_knob("LGFI_THREADS", Some("fast"), 1);
    }

    #[test]
    fn traffic_experiment_reports_every_router_and_load() {
        let s = exp_traffic_with(1, 2);
        assert!(s.contains("=="), "must render a table");
        for router in [
            "lgfi",
            "global-info",
            "local-only",
            "wu-minimal-block",
            "dimension-order",
        ] {
            assert!(s.contains(router), "missing {router} in:\n{s}");
        }
        assert!(s.contains("traffic_threads=2"));
    }

    #[test]
    fn dynamic_probe_runs_respect_theorem_4() {
        let runs = run_dynamic_probes(&[12, 12], 3, 50, 4);
        assert_eq!(runs.len(), 4);
        for run in runs {
            assert!(run.report.outcome.delivered());
            assert!(check_theorem4(&run.report, &run.bound).holds);
        }
    }
}
