//! Machine-readable engine performance records (`BENCH_engine.json`).
//!
//! The criterion benches print human-readable medians; this module additionally
//! measures the hot round loops deterministically and appends structured records to a
//! JSON file (one record per line inside a top-level array) so the performance
//! trajectory of the round data plane is tracked across PRs.  The
//! `convergence_scaling` bench emits these records after its criterion groups run;
//! `LGFI_BENCH_JSON` overrides the output path and `LGFI_BENCH_VARIANT` tags the
//! measured code/config variant.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use lgfi_core::block::BlockSet;
use lgfi_core::boundary::BoundaryMap;
use lgfi_core::labeling::LabelingEngine;
use lgfi_core::status::NodeStatus;
use lgfi_sim::{NeighborView, NodeCtx, Outbox, Protocol, RoundEngine};
use lgfi_topology::{Mesh, NodeId};
use lgfi_workloads::{FaultGenerator, FaultPlacement, TrafficGenerator, TrafficPattern};

/// One measured round-engine configuration, as recorded in `BENCH_engine.json`.
#[derive(Debug, Clone)]
pub struct EngineBenchRecord {
    /// Benchmark id, e.g. `labeling_sweep_64x64` or `gossip_rounds_64x64`.
    pub bench: String,
    /// The code/config variant that produced the number, e.g. `pre_rework` or
    /// `frontier_on` (from `LGFI_BENCH_VARIANT` when emitted by the bench).
    pub variant: String,
    /// Mesh shape, e.g. `64x64`.
    pub mesh: String,
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Rounds executed per measured run (deterministic across runs).
    pub rounds: u64,
    /// Median nanoseconds per round over the timed runs.
    pub ns_per_round: f64,
    /// Mean messages sent per round.
    pub messages_per_round: f64,
    /// Mean evaluated nodes per round: the active-frontier size, or the full node
    /// count when the engine evaluates every node.
    pub mean_frontier: f64,
}

impl EngineBenchRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"mesh\":\"{}\",\"threads\":{},\
             \"rounds\":{},\"ns_per_round\":{:.1},\"messages_per_round\":{:.2},\
             \"mean_frontier\":{:.1}}}",
            escape(&self.bench),
            escape(&self.variant),
            escape(&self.mesh),
            self.threads,
            self.rounds,
            self.ns_per_round,
            self.messages_per_round,
            self.mean_frontier,
        );
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The default output path: `BENCH_engine.json` at the workspace root, overridable
/// with the `LGFI_BENCH_JSON` environment variable.
pub fn default_json_path() -> PathBuf {
    if let Ok(p) = std::env::var("LGFI_BENCH_JSON") {
        if !p.trim().is_empty() {
            return PathBuf::from(p);
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// The variant tag for emitted records: `LGFI_BENCH_VARIANT`, defaulting to
/// `current`.
pub fn variant_tag() -> String {
    match std::env::var("LGFI_BENCH_VARIANT") {
        Ok(v) if !v.trim().is_empty() => v.trim().to_string(),
        _ => "current".to_string(),
    }
}

/// Appends records to the JSON file at `path`, keeping the file a valid JSON array
/// with one record per line (existing records are preserved).
pub fn append_records(path: &Path, records: &[EngineBenchRecord]) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    append_json_lines(path, &lines)
}

/// One measured probe-sweep configuration of the routing data plane, as recorded in
/// `BENCH_engine.json` alongside the round-engine records.
#[derive(Debug, Clone)]
pub struct RoutingBenchRecord {
    /// Benchmark id, e.g. `routing_sweep_32x32_40_faults`.
    pub bench: String,
    /// The code/config variant that produced the number (`LGFI_BENCH_VARIANT`).
    pub variant: String,
    /// Mesh shape, e.g. `32x32`.
    pub mesh: String,
    /// The router that drove the probes.
    pub router: String,
    /// Worker threads the probe sweep ran with (1 = serial).
    pub threads: usize,
    /// Probes routed per measured run.
    pub probes: usize,
    /// Median nanoseconds per routed probe over the timed runs.
    pub ns_per_probe: f64,
    /// Mean hops (forward + backtrack steps) per probe — a determinism fingerprint:
    /// it must be identical across variants and thread counts.
    pub hops_per_probe: f64,
    /// Number of delivered probes (also a determinism fingerprint).
    pub delivered: usize,
}

impl RoutingBenchRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"mesh\":\"{}\",\"router\":\"{}\",\
             \"threads\":{},\"probes\":{},\"ns_per_probe\":{:.1},\"hops_per_probe\":{:.2},\
             \"delivered\":{}}}",
            escape(&self.bench),
            escape(&self.variant),
            escape(&self.mesh),
            escape(&self.router),
            self.threads,
            self.probes,
            self.ns_per_probe,
            self.hops_per_probe,
            self.delivered,
        );
        s
    }
}

/// Appends routing records to the JSON file at `path` (same one-record-per-line array
/// format as [`append_records`]).
pub fn append_routing_records(path: &Path, records: &[RoutingBenchRecord]) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    append_json_lines(path, &lines)
}

fn append_json_lines(path: &Path, new_lines: &[String]) -> std::io::Result<()> {
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let t = line.trim().trim_end_matches(',');
            if t.starts_with('{') {
                lines.push(t.to_string());
            }
        }
    }
    lines.extend(new_lines.iter().cloned());
    let mut out = String::from("[\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str("  ");
        out.push_str(l);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out.push('\n');
    std::fs::write(path, out)
}

/// One measured concurrent-traffic configuration, as recorded in
/// `BENCH_engine.json` alongside the round-engine and routing records.
///
/// `bench = "traffic_load_16x16_12_faults"` records hold one latency-vs-offered-load
/// point each; `bench = "traffic_saturation_16x16_12_faults"` records hold the
/// saturation throughput of one router (the largest accepted throughput over the
/// load sweep).
#[derive(Debug, Clone)]
pub struct TrafficBenchRecord {
    /// Benchmark id.
    pub bench: String,
    /// The code/config variant that produced the number (`LGFI_BENCH_VARIANT`).
    pub variant: String,
    /// Mesh shape, e.g. `16x16`.
    pub mesh: String,
    /// The router that drove the packets.
    pub router: String,
    /// Traffic decision workers the engine ran with (1 = serial).
    pub threads: usize,
    /// Offered load in packets per cycle.
    pub offered_load: f64,
    /// Injection-window cycles.
    pub cycles: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Accepted throughput in packets per cycle — a determinism fingerprint
    /// alongside `delivered`: identical across variants and thread counts.
    pub accepted_throughput: f64,
    /// Mean delivered latency in cycles (queueing included).
    pub mean_latency: f64,
    /// Nearest-rank 99th-percentile delivered latency in cycles.
    pub p99_latency: u64,
    /// Mean stall cycles per packet.
    pub mean_stalls: f64,
    /// Flits per packet (1 = the packet-per-cycle model, >1 = wormhole worms).
    pub flits: u32,
    /// Virtual channels per directed link.
    pub vcs: u32,
    /// Worms torn down by the deadlock detector (0 with escape VCs).
    pub deadlocked: u64,
}

impl TrafficBenchRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"mesh\":\"{}\",\"router\":\"{}\",\
             \"threads\":{},\"offered_load\":{:.3},\"cycles\":{},\"injected\":{},\
             \"delivered\":{},\"accepted_throughput\":{:.4},\"mean_latency\":{:.2},\
             \"p99_latency\":{},\"mean_stalls\":{:.2},\"flits\":{},\"vcs\":{},\
             \"deadlocked\":{}}}",
            escape(&self.bench),
            escape(&self.variant),
            escape(&self.mesh),
            escape(&self.router),
            self.threads,
            self.offered_load,
            self.cycles,
            self.injected,
            self.delivered,
            self.accepted_throughput,
            self.mean_latency,
            self.p99_latency,
            self.mean_stalls,
            self.flits,
            self.vcs,
            self.deadlocked,
        );
        s
    }
}

/// Appends traffic records to the JSON file at `path` (same one-record-per-line
/// array format as [`append_records`]).
pub fn append_traffic_records(path: &Path, records: &[TrafficBenchRecord]) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    append_json_lines(path, &lines)
}

/// One fault-campaign SLO measurement, as recorded in `BENCH_engine.json`
/// alongside the engine, routing and traffic records.  One record per
/// (router, campaign shape) point of the `exp_slo` sweep.
#[derive(Debug, Clone)]
pub struct SloBenchRecord {
    /// Benchmark id, e.g. `slo_churn_16x16`.
    pub bench: String,
    /// The code/config variant that produced the number (`LGFI_BENCH_VARIANT`).
    pub variant: String,
    /// Mesh shape, e.g. `16x16`.
    pub mesh: String,
    /// The router that drove the packets.
    pub router: String,
    /// Traffic decision workers the campaign ran with (1 = serial).
    pub threads: usize,
    /// Campaign shape tag (`L`, `ring`, `front`, `outage`, `churn`, ...).
    pub shape: String,
    /// Fault density: peak simultaneous faults per interior node.
    pub density: f64,
    /// Injection cycles of the campaign.
    pub horizon: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered — a determinism fingerprint: identical across variants
    /// and thread counts.
    pub delivered: u64,
    /// Mesh-wide delivery rate.
    pub delivery_rate: f64,
    /// Median delivered latency in cycles.
    pub p50_latency: u64,
    /// 99th-percentile delivered latency in cycles.
    pub p99_latency: u64,
    /// 99.9th-percentile delivered latency in cycles.
    pub p999_latency: u64,
    /// Delivered packets whose detour exceeded the Theorem-4 budget.
    pub detour_violations: u64,
    /// Packets dropped because their destination became unreachable.
    pub unreachable: u64,
    /// Fault bursts observed.
    pub bursts: u64,
    /// Mean steps from a fault burst to labeling re-stabilisation.
    pub mean_reconverge: f64,
    /// The worst per-node delivery rate over nodes that injected anything.
    pub worst_node_delivery: f64,
}

impl SloBenchRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"mesh\":\"{}\",\"router\":\"{}\",\
             \"threads\":{},\"shape\":\"{}\",\"density\":{:.4},\"horizon\":{},\
             \"injected\":{},\"delivered\":{},\"delivery_rate\":{:.4},\"p50_latency\":{},\
             \"p99_latency\":{},\"p999_latency\":{},\"detour_violations\":{},\
             \"unreachable\":{},\"bursts\":{},\"mean_reconverge\":{:.2},\
             \"worst_node_delivery\":{:.4}}}",
            escape(&self.bench),
            escape(&self.variant),
            escape(&self.mesh),
            escape(&self.router),
            self.threads,
            escape(&self.shape),
            self.density,
            self.horizon,
            self.injected,
            self.delivered,
            self.delivery_rate,
            self.p50_latency,
            self.p99_latency,
            self.p999_latency,
            self.detour_violations,
            self.unreachable,
            self.bursts,
            self.mean_reconverge,
            self.worst_node_delivery,
        );
        s
    }
}

/// Appends SLO records to the JSON file at `path` (same one-record-per-line array
/// format as [`append_records`]).
pub fn append_slo_records(path: &Path, records: &[SloBenchRecord]) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    append_json_lines(path, &lines)
}

/// One measured configuration of the epoch-snapshot route-query service, as
/// recorded in `BENCH_engine.json`.
#[derive(Debug, Clone)]
pub struct RouteServiceBenchRecord {
    /// Benchmark id, e.g. `route_service_32x32_40_faults`.
    pub bench: String,
    /// The code/config variant that produced the number (`LGFI_BENCH_VARIANT`).
    pub variant: String,
    /// Mesh shape, e.g. `32x32`.
    pub mesh: String,
    /// The router the readers resolved with.
    pub router: String,
    /// Concurrent reader threads.
    pub readers: usize,
    /// True if the control plane was churning faults concurrently with the reads.
    pub churn: bool,
    /// Total queries resolved across all readers.
    pub queries: u64,
    /// Median wall-nanoseconds per query (aggregate wall time / total queries).
    pub ns_per_query: f64,
    /// Aggregate queries per second across all readers.
    pub qps: f64,
    /// Mean hops (forward + backtrack steps) per query.  Without churn this is a
    /// determinism fingerprint: identical across reader counts and variants, and
    /// bit-identical to the live network frozen at the same epoch.
    pub hops_per_query: f64,
    /// Delivered queries (fingerprint under the same caveat as `hops_per_query`).
    pub delivered: u64,
    /// Epochs published by the control plane while the readers ran (0 without
    /// churn).
    pub epochs: u64,
    /// Heap bytes per mesh node held by the published snapshot.
    pub bytes_per_node: f64,
}

impl RouteServiceBenchRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"mesh\":\"{}\",\"router\":\"{}\",\
             \"readers\":{},\"churn\":{},\"queries\":{},\"ns_per_query\":{:.1},\
             \"qps\":{:.0},\"hops_per_query\":{:.2},\"delivered\":{},\"epochs\":{},\
             \"bytes_per_node\":{:.1}}}",
            escape(&self.bench),
            escape(&self.variant),
            escape(&self.mesh),
            escape(&self.router),
            self.readers,
            self.churn,
            self.queries,
            self.ns_per_query,
            self.qps,
            self.hops_per_query,
            self.delivered,
            self.epochs,
            self.bytes_per_node,
        );
        s
    }
}

/// Appends route-service records to the JSON file at `path` (same
/// one-record-per-line array format as [`append_records`]).
pub fn append_route_service_records(
    path: &Path,
    records: &[RouteServiceBenchRecord],
) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    append_json_lines(path, &lines)
}

/// Runs the standard C5 traffic scenario (16×16 mesh, 12 clustered static faults,
/// 200 injection cycles) once for one router at one offered load and traffic
/// pattern, and returns the latency-vs-load record.
pub fn measure_traffic_load(
    router_name: &str,
    rate: f64,
    pattern: lgfi_workloads::TrafficPattern,
    traffic_threads: usize,
    variant: &str,
) -> TrafficBenchRecord {
    use lgfi_core::traffic_engine::TrafficSpec;
    let pattern_tag = match pattern {
        lgfi_workloads::TrafficPattern::Hotspot => "hotspot_",
        _ => "",
    };
    measure_traffic_spec(
        &format!("traffic_load_{pattern_tag}16x16_12_faults"),
        router_name,
        TrafficSpec::at_rate(rate),
        pattern,
        traffic_threads,
        variant,
    )
}

/// Runs the standard C5 traffic scenario once for one router under an arbitrary
/// [`TrafficSpec`](lgfi_core::traffic_engine::TrafficSpec) — the wormhole-aware
/// generalisation of [`measure_traffic_load`] used by the `exp_wormhole`
/// latency-vs-offered-load sweep.
pub fn measure_traffic_spec(
    bench: &str,
    router_name: &str,
    spec: lgfi_core::traffic_engine::TrafficSpec,
    pattern: lgfi_workloads::TrafficPattern,
    traffic_threads: usize,
    variant: &str,
) -> TrafficBenchRecord {
    use lgfi_analysis::TrafficSummary;
    let mut scenario = crate::harness::traffic_scenario(1, traffic_threads);
    scenario.traffic = pattern;
    let result = scenario.run_traffic(spec, &|| crate::harness::router_by_name(router_name));
    let s = TrafficSummary::of_records(&result.records, result.measured_cycles);
    TrafficBenchRecord {
        bench: bench.into(),
        variant: variant.into(),
        mesh: "16x16".into(),
        router: router_name.into(),
        threads: result.traffic_threads,
        offered_load: spec.injection_rate,
        cycles: result.measured_cycles,
        injected: result.stats.injected(),
        delivered: result.stats.delivered(),
        accepted_throughput: s.accepted_throughput,
        mean_latency: s.mean_latency,
        p99_latency: s.p99_latency,
        mean_stalls: s.mean_stalls,
        flits: spec.flits_per_packet,
        vcs: spec.vc_count,
        deadlocked: result.deadlocked(),
    }
}

/// Runs the standard traffic measurements — a uniform latency-vs-offered-load sweep
/// for all five routers plus one saturation-throughput record per router (the
/// largest accepted throughput over the sweep), a hot-spot sweep for every router
/// (the pattern whose single destination genuinely saturates: at most `2n` inbound
/// links' worth of packets can be accepted per cycle), and the LGFI router again at
/// 2 and 4 traffic workers — and appends the records to [`default_json_path`].
pub fn emit_traffic_records() {
    use lgfi_workloads::TrafficPattern;
    let variant = variant_tag();
    let routers = [
        "lgfi",
        "global-info",
        "local-only",
        "wu-minimal-block",
        "dimension-order",
    ];
    let loads = [0.1f64, 0.5, 1.0, 2.0, 4.0];
    let mut records = Vec::new();
    for router in routers {
        let mut saturation: Option<TrafficBenchRecord> = None;
        for &rate in &loads {
            let rec =
                measure_traffic_load(router, rate, TrafficPattern::UniformRandom, 1, &variant);
            let better = saturation
                .as_ref()
                .map(|s| rec.accepted_throughput > s.accepted_throughput)
                .unwrap_or(true);
            if better {
                saturation = Some(rec.clone());
            }
            records.push(rec);
        }
        let mut sat = saturation.expect("at least one load measured");
        sat.bench = "traffic_saturation_16x16_12_faults".into();
        records.push(sat);
        for &rate in &[1.0f64, 4.0] {
            records.push(measure_traffic_load(
                router,
                rate,
                TrafficPattern::Hotspot,
                1,
                &variant,
            ));
        }
    }
    for threads in [2usize, 4] {
        records.push(measure_traffic_load(
            "lgfi",
            1.0,
            TrafficPattern::UniformRandom,
            threads,
            &variant,
        ));
    }
    let path = default_json_path();
    match append_traffic_records(&path, &records) {
        Ok(()) => {
            for r in &records {
                println!("BENCH_engine {}", r.to_json());
            }
            println!("BENCH_engine.json updated: {}", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Runs the standard wormhole measurements — a latency-vs-offered-load sweep for
/// all five routers with `LGFI_FLITS`-flit worms over `LGFI_VCS` virtual channels
/// (escape class on), plus one wormhole saturation record per router (the largest
/// accepted throughput over the sweep) — and appends the records to
/// [`default_json_path`].
pub fn emit_wormhole_records() {
    use lgfi_core::traffic_engine::TrafficSpec;
    use lgfi_workloads::TrafficPattern;
    let variant = variant_tag();
    let flits = crate::harness::configured_flits();
    let vcs = crate::harness::configured_vcs().max(2);
    let routers = [
        "lgfi",
        "global-info",
        "local-only",
        "wu-minimal-block",
        "dimension-order",
    ];
    let loads = [0.1f64, 0.5, 1.0, 2.0];
    let mut records = Vec::new();
    for router in routers {
        let mut saturation: Option<TrafficBenchRecord> = None;
        for &rate in &loads {
            let spec = TrafficSpec::at_rate(rate)
                .flits_per_packet(flits)
                .vc_count(vcs);
            let rec = measure_traffic_spec(
                "wormhole_load_16x16_12_faults",
                router,
                spec,
                TrafficPattern::UniformRandom,
                1,
                &variant,
            );
            let better = saturation
                .as_ref()
                .map(|s| rec.accepted_throughput > s.accepted_throughput)
                .unwrap_or(true);
            if better {
                saturation = Some(rec.clone());
            }
            records.push(rec);
        }
        let mut sat = saturation.expect("at least one load measured");
        sat.bench = "wormhole_saturation_16x16_12_faults".into();
        records.push(sat);
    }
    let path = default_json_path();
    match append_traffic_records(&path, &records) {
        Ok(()) => {
            for r in &records {
                println!("BENCH_engine {}", r.to_json());
            }
            println!("BENCH_engine.json updated: {}", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// The standard routing-sweep workload: a 32×32 mesh with 40 clustered faults
/// (stabilised) and 256 uniform-random source/destination pairs over enabled nodes.
/// Deterministic (fixed seeds), so every variant and thread count routes the exact
/// same probes.
pub struct RoutingWorkload {
    /// The mesh.
    pub mesh: Mesh,
    /// Stabilised statuses.
    pub statuses: Vec<NodeStatus>,
    /// Extracted blocks.
    pub blocks: BlockSet,
    /// Constructed boundary map.
    pub boundary: BoundaryMap,
    /// The source/destination pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl RoutingWorkload {
    /// Builds the standard 32×32 workload.
    pub fn standard() -> Self {
        let mesh = Mesh::cubic(32, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 13);
        let faults = generator.place(40, FaultPlacement::Clustered { clusters: 5 });
        let mut eng = LabelingEngine::new(mesh.clone());
        eng.apply_faults(&faults);
        let blocks = BlockSet::extract(&mesh, eng.statuses());
        let boundary = BoundaryMap::construct(&mesh, &blocks);
        let statuses = eng.statuses().to_vec();
        let usable = statuses.clone();
        let mut traffic = TrafficGenerator::new(mesh.clone(), TrafficPattern::UniformRandom, 17);
        let pairs = traffic
            .requests(256, |id| usable[id] == NodeStatus::Enabled)
            .into_iter()
            .map(|r| (r.source, r.dest))
            .collect();
        RoutingWorkload {
            mesh,
            statuses,
            blocks,
            boundary,
            pairs,
        }
    }
}

/// Routes the whole workload once with `threads` sweep workers and returns
/// `(total_steps, delivered)`.  Every thread count — including the serial `1` —
/// goes through [`lgfi_core::routing::sweep_static`] with recycled per-worker
/// engines, so the recorded thread-scaling numbers compare the same data plane.
fn route_workload(w: &RoutingWorkload, router_name: &str, threads: usize) -> (u64, usize) {
    let mut steps = 0u64;
    let mut delivered = 0usize;
    let outcomes = lgfi_core::routing::sweep_static(
        &w.mesh,
        &w.statuses,
        w.blocks.blocks(),
        &w.boundary,
        &|| crate::harness::router_by_name(router_name),
        &w.pairs,
        100_000,
        threads,
    );
    for out in outcomes {
        steps += out.steps;
        delivered += usize::from(out.delivered());
    }
    (steps, delivered)
}

/// Measures the standard routing sweep for one router at the given probe-sweep
/// worker count, reported as nanoseconds per probe.
pub fn measure_routing_sweep(
    router_name: &str,
    threads: usize,
    variant: &str,
) -> RoutingBenchRecord {
    let w = RoutingWorkload::standard();
    let mut samples = Vec::with_capacity(RUNS);
    let mut steps = 0u64;
    let mut delivered = 0usize;
    for run in 0..=RUNS {
        let start = Instant::now();
        let (s, d) = route_workload(&w, router_name, threads);
        let elapsed = start.elapsed();
        steps = s;
        delivered = d;
        if run > 0 {
            samples.push(elapsed.as_nanos() as f64 / w.pairs.len() as f64);
        }
    }
    RoutingBenchRecord {
        bench: "routing_sweep_32x32_40_faults".into(),
        variant: variant.into(),
        mesh: "32x32".into(),
        router: router_name.into(),
        threads,
        probes: w.pairs.len(),
        ns_per_probe: median(&mut samples),
        hops_per_probe: steps as f64 / w.pairs.len() as f64,
        delivered,
    }
}

/// Runs the standard routing measurements (every router serially, plus the LGFI
/// router at 2 and 4 sweep workers) and appends the records to
/// [`default_json_path`].
pub fn emit_routing_records() {
    let variant = variant_tag();
    let mut records = vec![
        measure_routing_sweep("lgfi", 1, &variant),
        measure_routing_sweep("global-info", 1, &variant),
        measure_routing_sweep("local-only", 1, &variant),
        measure_routing_sweep("wu-minimal-block", 1, &variant),
        measure_routing_sweep("dimension-order", 1, &variant),
    ];
    for threads in [2usize, 4] {
        records.push(measure_routing_sweep("lgfi", threads, &variant));
    }
    let path = default_json_path();
    match append_routing_records(&path, &records) {
        Ok(()) => {
            for r in &records {
                println!("BENCH_engine {}", r.to_json());
            }
            println!("BENCH_engine.json updated: {}", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// A never-quiescing gossip rule with MinFlood-like per-node cost, shared by the
/// criterion bench and the JSON measurements: every node mixes its neighbors' states
/// and roughly 1/8 of the nodes relay messages each round, so a fixed round budget
/// measures raw round-engine throughput rather than convergence luck.
pub struct ThroughputGossip;

impl Protocol for ThroughputGossip {
    type State = u64;
    type Msg = u64;

    fn init(&self, ctx: &NodeCtx<'_>) -> u64 {
        (ctx.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
    }

    fn on_round(
        &self,
        _ctx: &NodeCtx<'_>,
        prev: &u64,
        neighbors: &[NeighborView<'_, u64>],
        inbox: &[u64],
        outbox: &mut Outbox<u64>,
    ) -> u64 {
        let mut h = *prev;
        for &m in inbox {
            h = h.rotate_left(7) ^ m;
        }
        for nb in neighbors {
            if let Some(&s) = nb.state {
                h = h.wrapping_add(s.rotate_right(11));
            }
        }
        if h % 8 == 0 {
            for nb in neighbors {
                outbox.send(nb.id, h);
            }
        }
        h
    }
}

/// Median of a non-empty slice (sorts a copy).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The number of timed runs per measurement (after one warm-up run).
const RUNS: usize = 5;

/// Measures the 64×64 labeling sweep of the `labeling_threads` criterion bench: 48
/// clustered faults run to fixpoint plus a fixed 32-round tail, reported as
/// nanoseconds per round, with active-frontier scheduling on or off.
pub fn measure_labeling_sweep(threads: usize, frontier: bool, variant: &str) -> EngineBenchRecord {
    let mesh = Mesh::cubic(64, 2);
    let mut generator = FaultGenerator::new(mesh.clone(), 9);
    let faults = generator.place(48, FaultPlacement::Clustered { clusters: 6 });
    let mut samples = Vec::with_capacity(RUNS);
    let mut rounds = 0u64;
    let mut mean_frontier = 0.0f64;
    for run in 0..=RUNS {
        let start = Instant::now();
        let mut eng = LabelingEngine::new(mesh.clone())
            .with_threads(threads)
            .with_frontier(frontier);
        for f in &faults {
            eng.inject_fault_coord(f);
        }
        eng.run_to_fixpoint(1_000).expect("labeling stabilises");
        for _ in 0..32 {
            eng.run_round();
        }
        let elapsed = start.elapsed();
        std::hint::black_box(eng.census());
        rounds = eng.rounds();
        mean_frontier = eng.mean_evaluated_per_round();
        if run > 0 {
            samples.push(elapsed.as_nanos() as f64 / rounds as f64);
        }
    }
    EngineBenchRecord {
        bench: format!("labeling_sweep_64x64_48_faults_f{}", u8::from(frontier)),
        variant: variant.into(),
        mesh: "64x64".into(),
        threads,
        rounds,
        ns_per_round: median(&mut samples),
        messages_per_round: 0.0,
        mean_frontier,
    }
}

/// Measures 40 rounds of [`ThroughputGossip`] on a 64×64 mesh (the
/// `round_engine_threads` criterion bench), reported as nanoseconds per round.
pub fn measure_gossip_rounds(threads: usize, variant: &str) -> EngineBenchRecord {
    let mesh = Mesh::cubic(64, 2);
    let mut samples = Vec::with_capacity(RUNS);
    let mut messages = 0.0f64;
    let mut frontier = 0.0f64;
    const ROUNDS: u64 = 40;
    for run in 0..=RUNS {
        let start = Instant::now();
        let mut eng = RoundEngine::new(mesh.clone(), ThroughputGossip).with_threads(threads);
        eng.run_rounds(ROUNDS);
        let elapsed = start.elapsed();
        std::hint::black_box(eng.states()[0]);
        messages = eng.stats().total_messages() as f64 / ROUNDS as f64;
        frontier = eng.stats().mean_evaluated_per_round();
        if run > 0 {
            samples.push(elapsed.as_nanos() as f64 / ROUNDS as f64);
        }
    }
    EngineBenchRecord {
        bench: "gossip_64x64_40_rounds".into(),
        variant: variant.into(),
        mesh: "64x64".into(),
        threads,
        rounds: ROUNDS,
        ns_per_round: median(&mut samples),
        messages_per_round: messages,
        mean_frontier: frontier,
    }
}

/// Runs the standard engine measurements (labeling sweep and gossip rounds at 1, 2
/// and 4 pooled workers) and appends the records to [`default_json_path`].
pub fn emit_engine_records() {
    let variant = variant_tag();
    let records = vec![
        measure_labeling_sweep(1, true, &variant),
        measure_labeling_sweep(1, false, &variant),
        measure_labeling_sweep(2, true, &variant),
        measure_labeling_sweep(4, true, &variant),
        measure_gossip_rounds(1, &variant),
        measure_gossip_rounds(2, &variant),
        measure_gossip_rounds(4, &variant),
    ];
    let path = default_json_path();
    match append_records(&path, &records) {
        Ok(()) => {
            for r in &records {
                println!("BENCH_engine {}", r.to_json());
            }
            println!("BENCH_engine.json updated: {}", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_as_json_lines_in_an_array() {
        let rec = EngineBenchRecord {
            bench: "b".into(),
            variant: "v".into(),
            mesh: "8x8".into(),
            threads: 2,
            rounds: 10,
            ns_per_round: 123.4,
            messages_per_round: 5.25,
            mean_frontier: 64.0,
        };
        let json = rec.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bench\":\"b\""));
        assert!(json.contains("\"threads\":2"));

        let dir = std::env::temp_dir().join("lgfi_bench_json_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_engine.json");
        let _ = std::fs::remove_file(&path);
        append_records(&path, std::slice::from_ref(&rec)).unwrap();
        append_records(&path, &[rec]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.trim_start().starts_with('['));
        assert!(content.trim_end().ends_with(']'));
        assert_eq!(content.matches("\"bench\":\"b\"").count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
