//! # lgfi-bench
//!
//! Experiment binaries and criterion benchmarks reproducing every figure and claim of
//! the paper.  See `src/bin/` for the per-experiment binaries and `benches/` for the
//! criterion harnesses; shared helpers live in [`harness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod perf;
pub mod route_service;
pub mod slo;
