//! Traffic patterns: source/destination pair generators.

use lgfi_sim::DetRng;
use lgfi_topology::{Coord, Mesh, NodeId};

/// A single routing request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficRequest {
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub dest: NodeId,
}

/// Standard interconnection-network traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random source and destination (distinct).
    UniformRandom,
    /// Transpose: the destination address is the reversed coordinate vector of the
    /// source (`(u_1, ..., u_n) -> (u_n, ..., u_1)`); degenerate pairs are re-drawn.
    Transpose,
    /// Bit-complement: `u_i -> k_i - 1 - u_i` in every dimension.
    BitComplement,
    /// All requests target one fixed hot-spot node (drawn once per generator).
    Hotspot,
    /// Opposite corners of the mesh, alternating orientation.
    CornerToCorner,
}

/// Generates routing requests for a pattern, skipping nodes rejected by a filter
/// (e.g. faulty or disabled nodes).
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    mesh: Mesh,
    pattern: TrafficPattern,
    rng: DetRng,
    hotspot: NodeId,
    corner_toggle: bool,
}

impl TrafficGenerator {
    /// A generator for `mesh` with the given pattern and seed.
    pub fn new(mesh: Mesh, pattern: TrafficPattern, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let hotspot = rng.below(mesh.node_count());
        TrafficGenerator {
            mesh,
            pattern,
            rng,
            hotspot,
            corner_toggle: false,
        }
    }

    fn complement(&self, c: &Coord) -> Coord {
        Coord::new(
            c.as_slice()
                .iter()
                .zip(self.mesh.dims())
                .map(|(&x, &k)| k - 1 - x)
                .collect::<Vec<i32>>(),
        )
    }

    fn transpose(&self, c: &Coord) -> Coord {
        let mut v: Vec<i32> = c.as_slice().to_vec();
        v.reverse();
        // Clamp into the mesh for non-cubic shapes.
        let clamped: Vec<i32> = v
            .iter()
            .zip(self.mesh.dims())
            .map(|(&x, &k)| x.min(k - 1))
            .collect();
        Coord::new(clamped)
    }

    /// Draws the next request whose endpoints both satisfy `usable` and are distinct.
    /// Returns `None` if no such pair could be found in a bounded number of attempts.
    pub fn next_request<F: Fn(NodeId) -> bool>(&mut self, usable: F) -> Option<TrafficRequest> {
        for _ in 0..10_000 {
            let (source, dest) = match self.pattern {
                TrafficPattern::UniformRandom => {
                    let s = self.rng.below(self.mesh.node_count());
                    let d = self.rng.below(self.mesh.node_count());
                    (s, d)
                }
                TrafficPattern::Transpose => {
                    let s = self.rng.below(self.mesh.node_count());
                    let sc = self.mesh.coord_of(s);
                    (s, self.mesh.id_of(&self.transpose(&sc)))
                }
                TrafficPattern::BitComplement => {
                    let s = self.rng.below(self.mesh.node_count());
                    let sc = self.mesh.coord_of(s);
                    (s, self.mesh.id_of(&self.complement(&sc)))
                }
                TrafficPattern::Hotspot => {
                    let s = self.rng.below(self.mesh.node_count());
                    if !usable(self.hotspot) {
                        // The fixed hot-spot node became unusable (e.g. it turned
                        // faulty): re-draw it so the pattern degrades to "the
                        // hot spot moves" instead of every request failing.
                        self.hotspot = self.rng.below(self.mesh.node_count());
                    }
                    (s, self.hotspot)
                }
                TrafficPattern::CornerToCorner => {
                    self.corner_toggle = !self.corner_toggle;
                    let origin = self.mesh.id_of(&Coord::origin(self.mesh.ndim()));
                    let far = self.mesh.id_of(&Coord::new(
                        self.mesh
                            .dims()
                            .iter()
                            .map(|&k| k - 1)
                            .collect::<Vec<i32>>(),
                    ));
                    if self.corner_toggle {
                        (origin, far)
                    } else {
                        (far, origin)
                    }
                }
            };
            if source != dest && usable(source) && usable(dest) {
                return Some(TrafficRequest { source, dest });
            }
        }
        None
    }

    /// Draws `count` requests (skipping unusable endpoints).
    pub fn requests<F: Fn(NodeId) -> bool>(
        &mut self,
        count: usize,
        usable: F,
    ) -> Vec<TrafficRequest> {
        (0..count)
            .filter_map(|_| self.next_request(&usable))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_topology::coord;

    #[test]
    fn uniform_random_pairs_are_distinct_and_in_range() {
        let mesh = Mesh::cubic(6, 3);
        let mut g = TrafficGenerator::new(mesh.clone(), TrafficPattern::UniformRandom, 1);
        let reqs = g.requests(200, |_| true);
        assert_eq!(reqs.len(), 200);
        for r in &reqs {
            assert_ne!(r.source, r.dest);
            assert!(r.source < mesh.node_count());
            assert!(r.dest < mesh.node_count());
        }
    }

    #[test]
    fn bit_complement_matches_definition() {
        let mesh = Mesh::cubic(8, 2);
        let mut g = TrafficGenerator::new(mesh.clone(), TrafficPattern::BitComplement, 2);
        let reqs = g.requests(50, |_| true);
        for r in &reqs {
            let s = mesh.coord_of(r.source);
            let d = mesh.coord_of(r.dest);
            for dim in 0..2 {
                assert_eq!(d[dim], 7 - s[dim]);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh::cubic(9, 2);
        let mut g = TrafficGenerator::new(mesh.clone(), TrafficPattern::Transpose, 3);
        let reqs = g.requests(50, |_| true);
        for r in &reqs {
            let s = mesh.coord_of(r.source);
            let d = mesh.coord_of(r.dest);
            assert_eq!(d, coord![s[1], s[0]]);
        }
    }

    #[test]
    fn hotspot_targets_one_node() {
        let mesh = Mesh::cubic(7, 2);
        let mut g = TrafficGenerator::new(mesh, TrafficPattern::Hotspot, 4);
        let reqs = g.requests(30, |_| true);
        let dests: std::collections::BTreeSet<NodeId> = reqs.iter().map(|r| r.dest).collect();
        assert_eq!(dests.len(), 1);
    }

    #[test]
    fn corner_to_corner_alternates() {
        let mesh = Mesh::cubic(5, 3);
        let mut g = TrafficGenerator::new(mesh.clone(), TrafficPattern::CornerToCorner, 5);
        let reqs = g.requests(4, |_| true);
        let origin = mesh.id_of(&coord![0, 0, 0]);
        let far = mesh.id_of(&coord![4, 4, 4]);
        assert_eq!(reqs[0].source, origin);
        assert_eq!(reqs[0].dest, far);
        assert_eq!(reqs[1].source, far);
        assert_eq!(reqs[1].dest, origin);
        assert_eq!(reqs[2].source, origin);
    }

    #[test]
    fn usable_filter_is_respected() {
        let mesh = Mesh::cubic(6, 2);
        let banned = mesh.id_of(&coord![3, 3]);
        let mut g = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 6);
        let reqs = g.requests(100, |id| id != banned);
        assert!(reqs.iter().all(|r| r.source != banned && r.dest != banned));
    }

    #[test]
    fn impossible_filter_yields_no_requests() {
        let mesh = Mesh::cubic(4, 2);
        let mut g = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 7);
        assert!(g.next_request(|_| false).is_none());
    }

    #[test]
    fn hotspot_on_a_faulty_node_is_redrawn() {
        // Ban whatever hot spot the generator picked: the pattern must degrade to a
        // new (usable) hot spot instead of failing every request.
        let mesh = Mesh::cubic(7, 2);
        for seed in 0..8u64 {
            let mut g = TrafficGenerator::new(mesh.clone(), TrafficPattern::Hotspot, seed);
            let original = g.next_request(|_| true).unwrap().dest;
            let reqs = g.requests(30, |id| id != original);
            assert_eq!(reqs.len(), 30, "seed {seed}: requests must keep flowing");
            let dests: std::collections::BTreeSet<NodeId> = reqs.iter().map(|r| r.dest).collect();
            assert_eq!(dests.len(), 1, "seed {seed}: still a single hot spot");
            assert!(!dests.contains(&original), "seed {seed}");
        }
    }

    #[test]
    fn degenerate_1xn_meshes_generate_valid_requests() {
        for pattern in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Hotspot,
            TrafficPattern::CornerToCorner,
        ] {
            let mesh = Mesh::new(&[1, 9]);
            let mut g = TrafficGenerator::new(mesh.clone(), pattern, 5);
            let reqs = g.requests(40, |_| true);
            assert!(
                !reqs.is_empty(),
                "{pattern:?} must produce requests on a 1x9 line"
            );
            for r in &reqs {
                assert_ne!(r.source, r.dest, "{pattern:?}");
                assert!(r.source < mesh.node_count() && r.dest < mesh.node_count());
                // All transposed/complemented coordinates must be clamped into the
                // degenerate dimension.
                assert_eq!(mesh.coord_of(r.dest)[0], 0, "{pattern:?}");
            }
        }
        // A single-node mesh has no valid pairs at all; the generator must give up
        // cleanly rather than loop forever.
        let mesh = Mesh::new(&[1, 1]);
        let mut g = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 1);
        assert!(g.next_request(|_| true).is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let mesh = Mesh::cubic(6, 2);
        let a = TrafficGenerator::new(mesh.clone(), TrafficPattern::UniformRandom, 9)
            .requests(20, |_| true);
        let b =
            TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 9).requests(20, |_| true);
        assert_eq!(a, b);
    }
}
