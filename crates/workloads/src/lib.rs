//! # lgfi-workloads
//!
//! Synthetic workloads for the LGFI reproduction: fault placements and dynamic fault
//! schedules ([`faultgen`]), traffic patterns ([`traffic`]), complete experiment
//! scenarios ([`scenario`]) and parallel parameter sweeps ([`sweep`]).
//!
//! The paper's evaluation (and the companion 2-D/3-D papers it summarises) relies on
//! synthetic fault processes: uniformly random faulty nodes away from the outermost
//! surface, occurring one (or a few) at a time with enough separation for the fault
//! information to stabilise.  The generators here produce exactly those processes,
//! plus deliberately harsher variants (clustered faults, short intervals, recoveries)
//! used by the extension experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod churn;
pub mod faultgen;
pub mod scenario;
pub mod sweep;
pub mod traffic;

pub use campaign::{CampaignFaults, CampaignResult, SloCampaign};
pub use churn::{ChurnConfig, ChurnProcess};
pub use faultgen::{
    ClusterShape, DynamicFaultConfig, FaultFrontConfig, FaultGenerator, FaultPlacement,
    RegionalOutageConfig,
};
pub use scenario::{Scenario, ScenarioResult, TrafficResult};
// Deprecated shim: kept for one release so downstream callers can migrate.
#[allow(deprecated)]
pub use scenario::TrafficLoad;
pub use sweep::{run_trials, run_trials_on, SweepPoint};
pub use traffic::{TrafficGenerator, TrafficPattern, TrafficRequest};
