//! Fault placement and dynamic fault schedules.

use lgfi_sim::{DetRng, FaultEvent, FaultPlan};
use lgfi_topology::{Coord, Mesh, NodeId, Region};

/// How faulty nodes are placed in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlacement {
    /// Uniformly random nodes in the interior of the mesh (the paper's assumption: no
    /// fault on the outermost surface).
    UniformInterior,
    /// Uniformly random nodes anywhere (violates the paper's assumption; used by the
    /// stress-test extensions).
    UniformAnywhere,
    /// Faults clustered around a small number of seed points, producing large blocks
    /// (worst case for `e_max`).
    Clustered {
        /// Number of cluster seed points.
        clusters: usize,
    },
}

/// Parameters of a dynamic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicFaultConfig {
    /// Number of fault occurrences.
    pub fault_count: usize,
    /// Step of the first occurrence.
    pub first_step: u64,
    /// Fixed gap `d_i` between consecutive occurrences (the paper assumes
    /// `d_i > (a_i + b_i + c_i)/λ`; choose accordingly or deliberately violate it).
    pub interval: u64,
    /// If true, every fault also recovers `recovery_delay` steps after it occurred.
    pub with_recovery: bool,
    /// Delay between a fault occurrence and its recovery (ignored unless
    /// `with_recovery`).
    pub recovery_delay: u64,
}

impl Default for DynamicFaultConfig {
    fn default() -> Self {
        DynamicFaultConfig {
            fault_count: 4,
            first_step: 0,
            interval: 40,
            with_recovery: false,
            recovery_delay: 100,
        }
    }
}

/// Generates fault placements and schedules deterministically from a seed.
#[derive(Debug, Clone)]
pub struct FaultGenerator {
    mesh: Mesh,
    rng: DetRng,
}

impl FaultGenerator {
    /// A generator for `mesh` seeded with `seed`.
    pub fn new(mesh: Mesh, seed: u64) -> Self {
        FaultGenerator {
            mesh,
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// The candidate region for a placement policy.
    fn candidate_nodes(&self, placement: FaultPlacement) -> Vec<Coord> {
        match placement {
            FaultPlacement::UniformInterior | FaultPlacement::Clustered { .. } => self
                .mesh
                .interior_region()
                .unwrap_or_else(|| self.mesh.full_region())
                .iter_coords()
                .collect(),
            FaultPlacement::UniformAnywhere => self.mesh.coords().collect(),
        }
    }

    /// Picks `count` distinct faulty nodes according to the placement policy.
    pub fn place(&mut self, count: usize, placement: FaultPlacement) -> Vec<Coord> {
        let candidates = self.candidate_nodes(placement);
        assert!(
            count <= candidates.len(),
            "cannot place {count} faults among {} candidates",
            candidates.len()
        );
        match placement {
            FaultPlacement::UniformInterior | FaultPlacement::UniformAnywhere => {
                let picks = self.rng.sample_indices(candidates.len(), count);
                picks.into_iter().map(|i| candidates[i].clone()).collect()
            }
            FaultPlacement::Clustered { clusters } => {
                let clusters = clusters.max(1);
                let seed_picks = self
                    .rng
                    .sample_indices(candidates.len(), clusters.min(count));
                let seeds: Vec<Coord> = seed_picks
                    .into_iter()
                    .map(|i| candidates[i].clone())
                    .collect();
                let mut chosen: Vec<Coord> = Vec::new();
                let interior = self
                    .mesh
                    .interior_region()
                    .unwrap_or_else(|| self.mesh.full_region());
                let mut radius = 1i32;
                while chosen.len() < count {
                    // Grow balls around the seeds until enough nodes are collected.
                    chosen.clear();
                    for seed in &seeds {
                        let ball = Region::new(
                            seed.as_slice().iter().map(|&x| x - radius).collect(),
                            seed.as_slice().iter().map(|&x| x + radius).collect(),
                        );
                        if let Some(clipped) = ball.clip(&interior) {
                            for c in clipped.iter_coords() {
                                if !chosen.contains(&c) {
                                    chosen.push(c);
                                }
                            }
                        }
                    }
                    radius += 1;
                    if radius > self.mesh.dims().iter().copied().max().unwrap_or(1) {
                        break;
                    }
                }
                self.rng.shuffle(&mut chosen);
                chosen.truncate(count);
                chosen
            }
        }
    }

    /// A static plan: all faults present from step 0.
    pub fn static_plan(&mut self, count: usize, placement: FaultPlacement) -> FaultPlan {
        let nodes: Vec<NodeId> = self
            .place(count, placement)
            .iter()
            .map(|c| self.mesh.id_of(c))
            .collect();
        FaultPlan::static_faults(&nodes)
    }

    /// A dynamic plan following [`DynamicFaultConfig`]: one fault per interval (the
    /// paper's model), optionally followed by recoveries.
    pub fn dynamic_plan(
        &mut self,
        config: DynamicFaultConfig,
        placement: FaultPlacement,
    ) -> FaultPlan {
        let nodes = self.place(config.fault_count, placement);
        let mut events = Vec::new();
        for (i, c) in nodes.iter().enumerate() {
            let id = self.mesh.id_of(c);
            let step = config.first_step + config.interval * i as u64;
            events.push(FaultEvent::fail(step, id));
            if config.with_recovery {
                events.push(FaultEvent::recover(step + config.recovery_delay, id));
            }
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_interior_respects_the_outermost_surface_assumption() {
        let mesh = Mesh::cubic(8, 3);
        let mut generator = FaultGenerator::new(mesh.clone(), 7);
        let faults = generator.place(40, FaultPlacement::UniformInterior);
        assert_eq!(faults.len(), 40);
        assert!(faults.iter().all(|c| !mesh.on_outermost_surface(c)));
        // Distinct.
        let mut sorted = faults;
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
    }

    #[test]
    fn uniform_anywhere_can_hit_the_surface() {
        let mesh = Mesh::cubic(4, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 3);
        let faults = generator.place(12, FaultPlacement::UniformAnywhere);
        assert!(faults.iter().any(|c| mesh.on_outermost_surface(c)));
    }

    #[test]
    fn clustered_faults_are_close_together() {
        let mesh = Mesh::cubic(16, 2);
        let mut generator = FaultGenerator::new(mesh, 11);
        let faults = generator.place(9, FaultPlacement::Clustered { clusters: 1 });
        assert_eq!(faults.len(), 9);
        let bb = Region::bounding_all(faults.iter()).unwrap();
        assert!(
            bb.max_edge() <= 7,
            "one cluster should stay compact, got {bb:?}"
        );
    }

    #[test]
    fn static_plan_is_valid_for_the_mesh() {
        let mesh = Mesh::cubic(10, 3);
        let mut generator = FaultGenerator::new(mesh.clone(), 5);
        let plan = generator.static_plan(20, FaultPlacement::UniformInterior);
        assert_eq!(plan.len(), 20);
        assert!(plan.validate(&mesh).is_empty());
    }

    #[test]
    fn dynamic_plan_spaces_faults_by_the_interval() {
        let mesh = Mesh::cubic(10, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 9);
        let plan = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count: 5,
                first_step: 10,
                interval: 25,
                with_recovery: false,
                recovery_delay: 0,
            },
            FaultPlacement::UniformInterior,
        );
        assert_eq!(plan.occurrence_times(), vec![10, 35, 60, 85, 110]);
        assert!(plan.intervals().iter().all(|&d| d == 25));
        assert!(plan.validate(&mesh).is_empty());
    }

    #[test]
    fn dynamic_plan_with_recovery_adds_matching_recoveries() {
        let mesh = Mesh::cubic(10, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 13);
        let plan = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count: 3,
                first_step: 0,
                interval: 30,
                with_recovery: true,
                recovery_delay: 45,
            },
            FaultPlacement::UniformInterior,
        );
        assert_eq!(plan.len(), 6);
        assert!(plan.validate(&mesh).is_empty());
        // Eventually everything is recovered.
        assert!(plan.faulty_at(1_000).is_empty());
        assert_eq!(
            plan.peak_fault_count(),
            2,
            "faults overlap by 45-30=15 steps"
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let mesh = Mesh::cubic(9, 3);
        let a = FaultGenerator::new(mesh.clone(), 42).place(15, FaultPlacement::UniformInterior);
        let b = FaultGenerator::new(mesh.clone(), 42).place(15, FaultPlacement::UniformInterior);
        let c = FaultGenerator::new(mesh, 43).place(15, FaultPlacement::UniformInterior);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
