//! Fault placement and dynamic fault schedules.

use lgfi_sim::{DetRng, FaultEvent, FaultPlan};
use lgfi_topology::{Coord, Mesh, NodeId, Region};

/// The outline of a concave fault cluster — adversarial input for Algorithm 2's
/// rectangular-block convexification, which must disable the nodes inside the
/// shape's cavity to reach a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterShape {
    /// Two perpendicular arms meeting at a corner.
    L,
    /// A bar with a perpendicular stem from its middle.
    T,
    /// Four arms around a center.
    Plus,
    /// A hollow rectangular ring (the cavity is entirely enclosed).
    Ring,
}

/// How faulty nodes are placed in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlacement {
    /// Uniformly random nodes in the interior of the mesh (the paper's assumption: no
    /// fault on the outermost surface).
    UniformInterior,
    /// Uniformly random nodes anywhere (violates the paper's assumption; used by the
    /// stress-test extensions).
    UniformAnywhere,
    /// Faults clustered around a small number of seed points, producing large blocks
    /// (worst case for `e_max`).
    Clustered {
        /// Number of cluster seed points.
        clusters: usize,
    },
    /// A single concave cluster of the given shape at a random interior anchor,
    /// drawn in the first two dimensions.  The shape grows until it holds the
    /// requested fault count; partial counts take a connected prefix of the shape.
    Shaped(ClusterShape),
}

/// Parameters of a dynamic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicFaultConfig {
    /// Number of fault occurrences.
    pub fault_count: usize,
    /// Step of the first occurrence.
    pub first_step: u64,
    /// Fixed gap `d_i` between consecutive occurrences (the paper assumes
    /// `d_i > (a_i + b_i + c_i)/λ`; choose accordingly or deliberately violate it).
    pub interval: u64,
    /// If true, every fault also recovers `recovery_delay` steps after it occurred.
    pub with_recovery: bool,
    /// Delay between a fault occurrence and its recovery (ignored unless
    /// `with_recovery`).
    pub recovery_delay: u64,
}

impl Default for DynamicFaultConfig {
    fn default() -> Self {
        DynamicFaultConfig {
            fault_count: 4,
            first_step: 0,
            interval: 40,
            with_recovery: false,
            recovery_delay: 100,
        }
    }
}

/// Parameters of a fault front sweeping across dimension 0 of the interior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultFrontConfig {
    /// Step at which the first slice fails.
    pub first_step: u64,
    /// Steps between consecutive slices failing.
    pub interval: u64,
    /// Number of simultaneously faulty slices (the wall's width); each slice
    /// recovers when the front has moved this many slices past it.
    pub thickness: usize,
}

impl Default for FaultFrontConfig {
    fn default() -> Self {
        FaultFrontConfig {
            first_step: 10,
            interval: 30,
            thickness: 2,
        }
    }
}

/// Parameters of a correlated regional-outage schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionalOutageConfig {
    /// Number of outage regions.
    pub outages: usize,
    /// Maximum extent of an outage region along each dimension.
    pub max_extent: i32,
    /// Step at which the first region fails.
    pub first_step: u64,
    /// Steps between consecutive regions failing.
    pub spacing: u64,
    /// Steps each region stays down before recovering as one burst.
    pub duration: u64,
}

impl Default for RegionalOutageConfig {
    fn default() -> Self {
        RegionalOutageConfig {
            outages: 3,
            max_extent: 3,
            first_step: 10,
            spacing: 80,
            duration: 50,
        }
    }
}

/// The ordered cell offsets of a [`ClusterShape`] holding at least `count` cells, in
/// the first two dimensions around the anchor.  Every prefix of the returned order
/// is connected (cells are appended by growing distance from the anchor, or by
/// walking the ring's perimeter), so truncating to `count` keeps one cluster.
fn shape_offsets(shape: ClusterShape, count: usize) -> Vec<(i32, i32)> {
    let mut offs: Vec<(i32, i32)> = Vec::with_capacity(count.max(1));
    match shape {
        ClusterShape::L => {
            offs.push((0, 0));
            let mut d = 1;
            while offs.len() < count {
                offs.push((d, 0));
                if offs.len() < count {
                    offs.push((0, d));
                }
                d += 1;
            }
        }
        ClusterShape::T => {
            offs.push((0, 0));
            let mut d = 1;
            while offs.len() < count {
                for arm in [(0, -d), (0, d), (d, 0)] {
                    if offs.len() < count {
                        offs.push(arm);
                    }
                }
                d += 1;
            }
        }
        ClusterShape::Plus => {
            offs.push((0, 0));
            let mut d = 1;
            while offs.len() < count {
                for arm in [(-d, 0), (d, 0), (0, -d), (0, d)] {
                    if offs.len() < count {
                        offs.push(arm);
                    }
                }
                d += 1;
            }
        }
        ClusterShape::Ring => {
            // Smallest ring with a perimeter of at least `count` cells.
            let mut r = 1i32;
            while (8 * r) < count as i32 {
                r += 1;
            }
            let (mut x, mut y) = (-r, -r);
            for (dx, dy) in [(0, 1), (1, 0), (0, -1), (-1, 0)] {
                for _ in 0..2 * r {
                    offs.push((x, y));
                    x += dx;
                    y += dy;
                }
            }
        }
    }
    offs
}

/// Generates fault placements and schedules deterministically from a seed.
#[derive(Debug, Clone)]
pub struct FaultGenerator {
    mesh: Mesh,
    rng: DetRng,
}

impl FaultGenerator {
    /// A generator for `mesh` seeded with `seed`.
    pub fn new(mesh: Mesh, seed: u64) -> Self {
        FaultGenerator {
            mesh,
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// The candidate region for a placement policy.
    fn candidate_nodes(&self, placement: FaultPlacement) -> Vec<Coord> {
        match placement {
            FaultPlacement::UniformInterior
            | FaultPlacement::Clustered { .. }
            | FaultPlacement::Shaped(_) => self
                .mesh
                .interior_region()
                .unwrap_or_else(|| self.mesh.full_region())
                .iter_coords()
                .collect(),
            FaultPlacement::UniformAnywhere => self.mesh.coords().collect(),
        }
    }

    /// The interior region (or the full mesh when there is no interior).
    fn interior(&self) -> Region {
        self.mesh
            .interior_region()
            .unwrap_or_else(|| self.mesh.full_region())
    }

    /// Picks `count` distinct faulty nodes according to the placement policy.
    pub fn place(&mut self, count: usize, placement: FaultPlacement) -> Vec<Coord> {
        if let FaultPlacement::Shaped(shape) = placement {
            return self.place_shaped(shape, count);
        }
        let candidates = self.candidate_nodes(placement);
        assert!(
            count <= candidates.len(),
            "cannot place {count} faults among {} candidates",
            candidates.len()
        );
        match placement {
            FaultPlacement::UniformInterior | FaultPlacement::UniformAnywhere => {
                let picks = self.rng.sample_indices(candidates.len(), count);
                picks.into_iter().map(|i| candidates[i].clone()).collect()
            }
            // audit:allow(panic): shaped placements take the early return at the top of this function
            FaultPlacement::Shaped(_) => unreachable!("handled above"),
            FaultPlacement::Clustered { clusters } => {
                let clusters = clusters.max(1);
                let seed_picks = self
                    .rng
                    .sample_indices(candidates.len(), clusters.min(count));
                let seeds: Vec<Coord> = seed_picks
                    .into_iter()
                    .map(|i| candidates[i].clone())
                    .collect();
                let mut chosen: Vec<Coord> = Vec::new();
                let interior = self
                    .mesh
                    .interior_region()
                    .unwrap_or_else(|| self.mesh.full_region());
                let mut radius = 1i32;
                while chosen.len() < count {
                    // Grow balls around the seeds until enough nodes are collected.
                    chosen.clear();
                    for seed in &seeds {
                        let ball = Region::new(
                            seed.as_slice().iter().map(|&x| x - radius).collect(),
                            seed.as_slice().iter().map(|&x| x + radius).collect(),
                        );
                        if let Some(clipped) = ball.clip(&interior) {
                            for c in clipped.iter_coords() {
                                if !chosen.contains(&c) {
                                    chosen.push(c);
                                }
                            }
                        }
                    }
                    radius += 1;
                    if radius > self.mesh.dims().iter().copied().max().unwrap_or(1) {
                        break;
                    }
                }
                self.rng.shuffle(&mut chosen);
                chosen.truncate(count);
                chosen
            }
        }
    }

    /// Places one concave cluster of `shape` with `count` nodes at a random interior
    /// anchor.
    fn place_shaped(&mut self, shape: ClusterShape, count: usize) -> Vec<Coord> {
        assert!(count > 0, "cannot place an empty shape");
        assert!(
            self.mesh.dims().len() >= 2,
            "shaped placements need at least 2 dimensions"
        );
        let mut offsets = shape_offsets(shape, count);
        offsets.truncate(count);
        let (mut lo0, mut hi0, mut lo1, mut hi1) = (0i32, 0i32, 0i32, 0i32);
        for &(a, b) in &offsets {
            lo0 = lo0.min(a);
            hi0 = hi0.max(a);
            lo1 = lo1.min(b);
            hi1 = hi1.max(b);
        }
        let interior = self.interior();
        let (ilo, ihi) = (interior.lo().to_vec(), interior.hi().to_vec());
        assert!(
            ilo[0] - lo0 <= ihi[0] - hi0 && ilo[1] - lo1 <= ihi[1] - hi1,
            "mesh interior too small for a {count}-node {shape:?} cluster"
        );
        let a0 = self.rng.range_i32(ilo[0] - lo0, ihi[0] - hi0);
        let a1 = self.rng.range_i32(ilo[1] - lo1, ihi[1] - hi1);
        let rest: Vec<i32> = (2..ilo.len())
            .map(|d| self.rng.range_i32(ilo[d], ihi[d]))
            .collect();
        offsets
            .iter()
            .map(|&(o0, o1)| {
                let mut v = Vec::with_capacity(ilo.len());
                v.push(a0 + o0);
                v.push(a1 + o1);
                v.extend_from_slice(&rest);
                Coord::new(v)
            })
            .collect()
    }

    /// A fault *front* sweeping across the mesh: successive interior slices along
    /// dimension 0 fail one [`FaultFrontConfig::interval`] apart, and each slice
    /// recovers once the front has moved [`FaultFrontConfig::thickness`] slices past
    /// it — a moving wall of faults crossing the whole interior.  Deterministic (no
    /// randomness involved) and [`FaultPlan::validate`]-clean.
    pub fn front_plan(&mut self, config: FaultFrontConfig) -> FaultPlan {
        let interior = self.interior();
        let (lo, hi) = (interior.lo().to_vec(), interior.hi().to_vec());
        let thickness = config.thickness.max(1) as u64;
        let slices = (hi[0] - lo[0] + 1).max(0) as u64;
        let mut events = Vec::new();
        for i in 0..slices {
            let mut slice_lo = lo.clone();
            let mut slice_hi = hi.clone();
            slice_lo[0] = lo[0] + i as i32;
            slice_hi[0] = slice_lo[0];
            let t_fail = config.first_step + config.interval * i;
            let t_recover = config.first_step + config.interval * (i + thickness);
            for c in Region::new(slice_lo, slice_hi).iter_coords() {
                let id = self.mesh.id_of(&c);
                events.push(FaultEvent::fail(t_fail, id));
                events.push(FaultEvent::recover(t_recover, id));
            }
        }
        FaultPlan::new(events)
    }

    /// Correlated regional outages: [`RegionalOutageConfig::outages`] random
    /// pairwise-disjoint interior regions, each failing as one burst and recovering
    /// as one burst.  Regions that cannot be placed disjointly after a bounded number
    /// of deterministic attempts are skipped.
    pub fn regional_outage_plan(&mut self, config: RegionalOutageConfig) -> FaultPlan {
        let interior = self.interior();
        let ndim = self.mesh.dims().len();
        let mut chosen: Vec<Region> = Vec::new();
        let mut events = Vec::new();
        for k in 0..config.outages {
            let mut picked = None;
            for _attempt in 0..32 {
                let mut lo = Vec::with_capacity(ndim);
                let mut hi = Vec::with_capacity(ndim);
                for d in 0..ndim {
                    let span = interior.hi()[d] - interior.lo()[d] + 1;
                    let extent = self.rng.range_i32(1, config.max_extent.max(1).min(span));
                    let l = self
                        .rng
                        .range_i32(interior.lo()[d], interior.hi()[d] - (extent - 1));
                    lo.push(l);
                    hi.push(l + extent - 1);
                }
                let r = Region::new(lo, hi);
                if chosen.iter().all(|c| c.clip(&r).is_none()) {
                    picked = Some(r);
                    break;
                }
            }
            let Some(region) = picked else { continue };
            let t = config.first_step + config.spacing * k as u64;
            for c in region.iter_coords() {
                let id = self.mesh.id_of(&c);
                events.push(FaultEvent::fail(t, id));
                events.push(FaultEvent::recover(t + config.duration.max(1), id));
            }
            chosen.push(region);
        }
        FaultPlan::new(events)
    }

    /// A static plan: all faults present from step 0.
    pub fn static_plan(&mut self, count: usize, placement: FaultPlacement) -> FaultPlan {
        let nodes: Vec<NodeId> = self
            .place(count, placement)
            .iter()
            .map(|c| self.mesh.id_of(c))
            .collect();
        FaultPlan::static_faults(&nodes)
    }

    /// A dynamic plan following [`DynamicFaultConfig`]: one fault per interval (the
    /// paper's model), optionally followed by recoveries.
    pub fn dynamic_plan(
        &mut self,
        config: DynamicFaultConfig,
        placement: FaultPlacement,
    ) -> FaultPlan {
        let nodes = self.place(config.fault_count, placement);
        let mut events = Vec::new();
        for (i, c) in nodes.iter().enumerate() {
            let id = self.mesh.id_of(c);
            let step = config.first_step + config.interval * i as u64;
            events.push(FaultEvent::fail(step, id));
            if config.with_recovery {
                events.push(FaultEvent::recover(step + config.recovery_delay, id));
            }
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_interior_respects_the_outermost_surface_assumption() {
        let mesh = Mesh::cubic(8, 3);
        let mut generator = FaultGenerator::new(mesh.clone(), 7);
        let faults = generator.place(40, FaultPlacement::UniformInterior);
        assert_eq!(faults.len(), 40);
        assert!(faults.iter().all(|c| !mesh.on_outermost_surface(c)));
        // Distinct.
        let mut sorted = faults;
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
    }

    #[test]
    fn uniform_anywhere_can_hit_the_surface() {
        let mesh = Mesh::cubic(4, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 3);
        let faults = generator.place(12, FaultPlacement::UniformAnywhere);
        assert!(faults.iter().any(|c| mesh.on_outermost_surface(c)));
    }

    #[test]
    fn clustered_faults_are_close_together() {
        let mesh = Mesh::cubic(16, 2);
        let mut generator = FaultGenerator::new(mesh, 11);
        let faults = generator.place(9, FaultPlacement::Clustered { clusters: 1 });
        assert_eq!(faults.len(), 9);
        let bb = Region::bounding_all(faults.iter()).unwrap();
        assert!(
            bb.max_edge() <= 7,
            "one cluster should stay compact, got {bb:?}"
        );
    }

    #[test]
    fn static_plan_is_valid_for_the_mesh() {
        let mesh = Mesh::cubic(10, 3);
        let mut generator = FaultGenerator::new(mesh.clone(), 5);
        let plan = generator.static_plan(20, FaultPlacement::UniformInterior);
        assert_eq!(plan.len(), 20);
        assert!(plan.validate(&mesh).is_empty());
    }

    #[test]
    fn dynamic_plan_spaces_faults_by_the_interval() {
        let mesh = Mesh::cubic(10, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 9);
        let plan = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count: 5,
                first_step: 10,
                interval: 25,
                with_recovery: false,
                recovery_delay: 0,
            },
            FaultPlacement::UniformInterior,
        );
        assert_eq!(plan.occurrence_times(), vec![10, 35, 60, 85, 110]);
        assert!(plan.intervals().iter().all(|&d| d == 25));
        assert!(plan.validate(&mesh).is_empty());
    }

    #[test]
    fn dynamic_plan_with_recovery_adds_matching_recoveries() {
        let mesh = Mesh::cubic(10, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 13);
        let plan = generator.dynamic_plan(
            DynamicFaultConfig {
                fault_count: 3,
                first_step: 0,
                interval: 30,
                with_recovery: true,
                recovery_delay: 45,
            },
            FaultPlacement::UniformInterior,
        );
        assert_eq!(plan.len(), 6);
        assert!(plan.validate(&mesh).is_empty());
        // Eventually everything is recovered.
        assert!(plan.faulty_at(1_000).is_empty());
        assert_eq!(
            plan.peak_fault_count(),
            2,
            "faults overlap by 45-30=15 steps"
        );
    }

    #[test]
    fn shaped_placements_are_connected_interior_and_concave() {
        let mesh = Mesh::cubic(16, 2);
        for shape in [
            ClusterShape::L,
            ClusterShape::T,
            ClusterShape::Plus,
            ClusterShape::Ring,
        ] {
            let mut generator = FaultGenerator::new(mesh.clone(), 21);
            let faults = generator.place(9, FaultPlacement::Shaped(shape));
            assert_eq!(faults.len(), 9, "{shape:?}");
            assert!(
                faults.iter().all(|c| !mesh.on_outermost_surface(c)),
                "{shape:?} must stay interior"
            );
            let mut sorted = faults.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 9, "{shape:?} cells must be distinct");
            // Connected under 1-hop adjacency (Manhattan distance 1).
            let mut reached = vec![false; faults.len()];
            reached[0] = true;
            let mut frontier = vec![0usize];
            while let Some(i) = frontier.pop() {
                for j in 0..faults.len() {
                    if !reached[j] {
                        let d: i32 = faults[i]
                            .as_slice()
                            .iter()
                            .zip(faults[j].as_slice())
                            .map(|(a, b)| (a - b).abs())
                            .sum();
                        if d == 1 {
                            reached[j] = true;
                            frontier.push(j);
                        }
                    }
                }
            }
            assert!(
                reached.iter().all(|&r| r),
                "{shape:?} cluster must be connected"
            );
            // Concave: the bounding box strictly exceeds the cell count.
            let bb = Region::bounding_all(faults.iter()).unwrap();
            assert!(
                bb.volume() as usize > faults.len(),
                "{shape:?} must not fill its bounding box"
            );
        }
    }

    #[test]
    fn full_ring_encloses_its_cavity() {
        let mesh = Mesh::cubic(16, 2);
        let mut generator = FaultGenerator::new(mesh, 5);
        // 8 cells = a complete radius-1 ring around some anchor.
        let faults = generator.place(8, FaultPlacement::Shaped(ClusterShape::Ring));
        let bb = Region::bounding_all(faults.iter()).unwrap();
        assert_eq!(bb.volume(), 9, "radius-1 ring bounding box is 3x3");
        assert_eq!(faults.len(), 8, "the center cell is the cavity");
    }

    #[test]
    fn front_plan_sweeps_and_validates() {
        let mesh = Mesh::cubic(8, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 3);
        let plan = generator.front_plan(FaultFrontConfig {
            first_step: 5,
            interval: 20,
            thickness: 2,
        });
        assert!(plan.validate(&mesh).is_empty());
        // 6 interior slices of 6 nodes, each failing and recovering once.
        assert_eq!(plan.len(), 2 * 6 * 6);
        // The wall is `thickness` slices wide while sweeping.
        assert_eq!(plan.peak_fault_count(), 2 * 6);
        // Everything recovers after the front has passed.
        assert!(plan.faulty_at(10_000).is_empty());
        // Deterministic: no randomness involved.
        let again = FaultGenerator::new(mesh, 99).front_plan(FaultFrontConfig {
            first_step: 5,
            interval: 20,
            thickness: 2,
        });
        assert_eq!(plan, again);
    }

    #[test]
    fn regional_outage_plan_validates_and_recovers() {
        let mesh = Mesh::cubic(12, 2);
        let mut generator = FaultGenerator::new(mesh.clone(), 17);
        let config = RegionalOutageConfig {
            outages: 3,
            max_extent: 3,
            first_step: 10,
            spacing: 100,
            duration: 40,
        };
        let plan = generator.regional_outage_plan(config);
        assert!(
            plan.validate(&mesh).is_empty(),
            "{:?}",
            plan.validate(&mesh)
        );
        assert!(plan.peak_fault_count() > 0);
        assert!(plan.faulty_at(100_000).is_empty());
        // Deterministic in the seed.
        let again = FaultGenerator::new(mesh, 17).regional_outage_plan(config);
        assert_eq!(plan, again);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let mesh = Mesh::cubic(9, 3);
        let a = FaultGenerator::new(mesh.clone(), 42).place(15, FaultPlacement::UniformInterior);
        let b = FaultGenerator::new(mesh.clone(), 42).place(15, FaultPlacement::UniformInterior);
        let c = FaultGenerator::new(mesh, 43).place(15, FaultPlacement::UniformInterior);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
