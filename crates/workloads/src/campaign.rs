//! Adversarial fault campaigns with SLO observation.
//!
//! An [`SloCampaign`] is the robustness counterpart of
//! [`Scenario::run_traffic`](crate::scenario::Scenario::run_traffic): it drives
//! the dynamic network and the concurrent
//! traffic engine for a long horizon under a fault campaign — either a materialised
//! [`FaultPlan`] (shaped clusters, fault fronts, regional outages from
//! [`crate::faultgen`]) or a streaming Poisson [`ChurnProcess`] — and accumulates
//! per-router availability SLOs in an [`SloObserver`] instead of keeping every
//! packet record.
//!
//! The network itself always runs with an *empty* plan: the campaign feeds every
//! fault event through `LgfiNetwork::run_traffic_step_with` from a reused buffer
//! (a [`FaultPlanCursor`] over the held plan, or [`ChurnProcess::events_at`]), so
//! a multi-million-cycle churn run never materialises its schedule, the per-step
//! burst scan inside the observer stays O(1), and the traffic engine's
//! finished-packet records are folded into the SLOs and cleared every cycle.
//! Results are bit-identical across every thread knob.

use lgfi_core::network::{LgfiNetwork, NetworkConfig};
use lgfi_core::routing::Router;
use lgfi_core::slo::SloObserver;
use lgfi_core::status::NodeStatus;
use lgfi_core::traffic_engine::{TrafficEngine, TrafficSpec};
use lgfi_sim::{
    FaultEvent, FaultEventKind, FaultPlan, FaultPlanCursor, InjectionProcess, SloTracker,
};
use lgfi_topology::Mesh;

use crate::churn::{ChurnConfig, ChurnProcess};
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// The fault process driving a campaign.
#[derive(Debug, Clone)]
pub enum CampaignFaults {
    /// A materialised schedule (shaped clusters, fault fronts, regional outages).
    Plan(FaultPlan),
    /// A streaming Poisson fail/repair process seeded from the campaign seed.
    Churn(ChurnConfig),
}

/// A long-horizon fault campaign observed through the SLO plane.
#[derive(Debug, Clone)]
pub struct SloCampaign {
    /// Mesh radices.
    pub dims: Vec<i32>,
    /// Random seed (drives churn and traffic; plans carry their own seed).
    pub seed: u64,
    /// Rounds of information exchange per step (λ).
    pub lambda: u64,
    /// Worker threads for the information rounds (1 = serial); bit-identical
    /// results for every setting.
    pub threads: usize,
    /// Active-frontier scheduling for the labeling rounds.
    pub frontier: bool,
    /// Worker threads for probe routing decisions (unused by traffic campaigns but
    /// part of the network configuration).
    pub probe_threads: usize,
    /// The unified traffic surface: injection rate, injection cycles
    /// (`traffic.cycles` is the campaign horizon), drain window, link capacity,
    /// the wormhole knobs (flits, VCs, buffers, escape class) and the traffic
    /// decision-worker count.
    pub traffic: TrafficSpec,
    /// Traffic pattern for the injected packets.
    pub pattern: TrafficPattern,
    /// The fault process.
    pub faults: CampaignFaults,
}

impl SloCampaign {
    /// A small churn campaign useful in examples and tests.
    pub fn small_churn() -> Self {
        SloCampaign {
            dims: vec![12, 12],
            seed: 1,
            lambda: 1,
            threads: 1,
            frontier: true,
            probe_threads: 1,
            traffic: TrafficSpec::at_rate(0.5)
                .cycles(1_500)
                .drain_cycles(2_000)
                .max_packet_cycles(2_000),
            pattern: TrafficPattern::UniformRandom,
            faults: CampaignFaults::Churn(ChurnConfig {
                fail_rate: 0.01,
                mean_downtime: 120.0,
                max_faulty: 6,
            }),
        }
    }

    /// The mesh described by this campaign.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(&self.dims)
    }

    /// Runs the campaign with routers produced by `make_router` and returns the
    /// accumulated SLOs.  Deterministic in the campaign fields: every thread knob
    /// yields a bit-identical [`CampaignResult`].
    pub fn run(&self, make_router: &dyn Fn() -> Box<dyn Router>) -> CampaignResult {
        let mesh = self.mesh();
        let horizon = self.traffic.cycles;
        let mut net = LgfiNetwork::new(
            mesh.clone(),
            FaultPlan::empty(),
            NetworkConfig {
                lambda: self.lambda,
                max_probe_steps: horizon + self.traffic.drain_cycles,
                threads: self.threads,
                frontier: self.frontier,
                probe_threads: self.probe_threads,
            },
        );
        let mut engine = TrafficEngine::new(mesh.clone(), self.traffic, make_router);
        let mut traffic =
            TrafficGenerator::new(mesh.clone(), self.pattern, self.seed ^ 0x00AF_F1C0);
        let mut injection = InjectionProcess::new(self.traffic.injection_rate);
        let mut obs = SloObserver::new(mesh.node_count());

        // Pre-size the accumulators: latencies are capped by `max_packet_cycles`,
        // reconvergence times by the stabilisation horizon, bursts by the fault
        // process itself.
        let max_bursts = match &self.faults {
            CampaignFaults::Plan(plan) => plan
                .events()
                .iter()
                .filter(|e| e.kind == FaultEventKind::Fail)
                .count(),
            CampaignFaults::Churn(cfg) => (cfg.fail_rate * horizon as f64).ceil() as usize + 16,
        };
        obs.reserve(self.traffic.max_packet_cycles + 2, 4_096, max_bursts);
        engine.reserve(
            64 + (self.traffic.injection_rate.ceil() as usize) * 64,
            self.traffic.max_packet_cycles + 2,
        );

        // The event stream: a cursor over the held plan, or the churn process.
        let mut plan_cursor = FaultPlanCursor::new();
        let mut churn = match &self.faults {
            CampaignFaults::Churn(cfg) => Some(ChurnProcess::new(mesh, self.seed, *cfg)),
            CampaignFaults::Plan(_) => None,
        };
        let mut events: Vec<FaultEvent> = Vec::with_capacity(32);

        for _ in 0..horizon {
            let step = net.step();
            match (&self.faults, churn.as_mut()) {
                (CampaignFaults::Plan(plan), _) => {
                    events.clear();
                    events.extend_from_slice(plan_cursor.events_at(plan, step));
                }
                (CampaignFaults::Churn(_), Some(churn)) => churn.events_at(step, &mut events),
                (CampaignFaults::Churn(_), None) => events.clear(),
            }
            for _ in 0..injection.packets_this_cycle() {
                let statuses = net.statuses();
                if let Some(req) = traffic.next_request(|id| statuses[id] == NodeStatus::Enabled) {
                    engine.inject(req.source, req.dest);
                }
            }
            net.run_traffic_step_with(&events, &mut engine);
            obs.observe_step(&net, &engine, &events);
            engine.clear_records();
            obs.notify_records_cleared();
        }
        // Event-free drain: let the in-flight packets finish.
        let mut drained = 0u64;
        while engine.in_flight() > 0 && drained < self.traffic.drain_cycles {
            net.run_traffic_step_with(&[], &mut engine);
            obs.observe_step(&net, &engine, &[]);
            engine.clear_records();
            obs.notify_records_cleared();
            drained += 1;
        }

        CampaignResult {
            router: engine.router_name(),
            threads: net.threads(),
            traffic_threads: engine.traffic_threads(),
            horizon,
            drained,
            e_max_seen: obs.e_max_seen(),
            a_steps_max: obs.a_steps_max(),
            tracker: obs.into_tracker(),
        }
    }
}

/// The outcome of an [`SloCampaign`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Name of the router that drove the packets.
    pub router: &'static str,
    /// Resolved information-round worker count (execution detail).
    pub threads: usize,
    /// Resolved traffic decision-worker count (execution detail).
    pub traffic_threads: usize,
    /// Injection cycles executed.
    pub horizon: u64,
    /// Drain cycles actually used.
    pub drained: u64,
    /// Largest block extent seen (the running Theorem-4 `e_max`).
    pub e_max_seen: u64,
    /// Longest stabilisation seen in steps (the running Theorem-4 `a_max`).
    pub a_steps_max: u64,
    /// The accumulated SLOs.
    pub tracker: SloTracker,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultgen::{ClusterShape, FaultGenerator, FaultPlacement};
    use lgfi_core::routing::LgfiRouter;

    #[test]
    fn plan_campaign_delivers_under_shaped_faults() {
        let mesh = Mesh::cubic(12, 2);
        let plan = FaultGenerator::new(mesh, 5).dynamic_plan(
            crate::faultgen::DynamicFaultConfig {
                fault_count: 5,
                first_step: 20,
                interval: 40,
                with_recovery: false,
                recovery_delay: 0,
            },
            FaultPlacement::Shaped(ClusterShape::L),
        );
        let mut campaign = SloCampaign {
            faults: CampaignFaults::Plan(plan),
            ..SloCampaign::small_churn()
        };
        campaign.traffic = campaign.traffic.cycles(400);
        let result = campaign.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(result.router, "lgfi");
        assert!(result.tracker.injected() > 100);
        assert!(
            result.tracker.delivery_rate() > 0.9,
            "rate {}",
            result.tracker.delivery_rate()
        );
        assert!(result.tracker.bursts() >= 1);
        assert!(result.e_max_seen >= 1);
    }

    #[test]
    fn churn_campaign_observes_bursts_and_reconvergence() {
        let campaign = SloCampaign::small_churn();
        let result = campaign.run(&|| Box::new(LgfiRouter::new()));
        assert!(result.tracker.injected() > 400);
        assert!(
            result.tracker.bursts() >= 3,
            "{} bursts",
            result.tracker.bursts()
        );
        assert!(result.tracker.reconverge().count() >= 1);
        assert!(
            result.tracker.delivery_rate() > 0.8,
            "rate {}",
            result.tracker.delivery_rate()
        );
        // Per-node SLOs were actually populated.
        assert!(result.tracker.per_node().iter().any(|n| n.injected > 0));
    }

    #[test]
    fn wormhole_campaigns_stay_deadlock_free_under_churn() {
        let mut campaign = SloCampaign::small_churn();
        campaign.traffic = campaign.traffic.cycles(400).flits_per_packet(4);
        let result = campaign.run(&|| Box::new(LgfiRouter::new()));
        assert!(result.tracker.injected() > 100);
        assert!(
            result.tracker.delivery_rate() > 0.8,
            "rate {}",
            result.tracker.delivery_rate()
        );
    }

    #[test]
    fn campaigns_are_deterministic_and_thread_invariant() {
        let mut campaign = SloCampaign::small_churn();
        campaign.traffic = campaign.traffic.cycles(500);
        let a = campaign.run(&|| Box::new(LgfiRouter::new()));
        let b = campaign.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(a, b);
        campaign.threads = 4;
        campaign.traffic = campaign.traffic.traffic_threads(4);
        let sharded = campaign.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(sharded.traffic_threads, 4);
        assert_eq!(a.tracker, sharded.tracker, "sharding must be invisible");
        assert_eq!(a.e_max_seen, sharded.e_max_seen);
    }
}
