//! Complete experiment scenarios: mesh + fault schedule + traffic + step model.

use lgfi_core::network::{ConvergenceRecord, LgfiNetwork, NetworkConfig, ProbeReport};
use lgfi_core::routing::Router;
use lgfi_core::status::NodeStatus;
use lgfi_core::traffic_engine::{PacketRecord, TrafficEngine, TrafficSpec};
use lgfi_sim::{FaultPlan, InjectionProcess, TrafficStats};
use lgfi_topology::Mesh;

use crate::faultgen::{DynamicFaultConfig, FaultGenerator, FaultPlacement};
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// A self-contained experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Mesh radices.
    pub dims: Vec<i32>,
    /// Random seed (drives fault placement and traffic).
    pub seed: u64,
    /// Number of fault occurrences.
    pub fault_count: usize,
    /// Fault placement policy.
    pub placement: FaultPlacement,
    /// If `Some`, faults occur dynamically with this configuration; if `None`, all
    /// faults are static (present from step 0).
    pub dynamic: Option<DynamicFaultConfig>,
    /// Rounds of information exchange per step (λ).
    pub lambda: u64,
    /// Traffic pattern for the probes.
    pub traffic: TrafficPattern,
    /// Number of probes to route.
    pub messages: usize,
    /// Step at which the probes are launched.
    pub launch_step: u64,
    /// Hard cap on the total number of steps simulated.
    pub max_steps: u64,
    /// Worker threads for the network's information rounds (`1` = serial, `0` = one
    /// per available core); results are bit-identical for every setting.
    pub threads: usize,
    /// Active-frontier scheduling for the labeling rounds (on by default); like
    /// `threads`, an execution detail that never changes results.
    pub frontier: bool,
    /// Worker threads for the per-step probe routing decisions (`1` = serial, `0` =
    /// one per available core); like `threads`, results are bit-identical for every
    /// setting.
    pub probe_threads: usize,
    /// Worker threads for the per-cycle traffic decisions of
    /// [`Scenario::run_traffic`] (`1` = serial, `0` = one per available core); like
    /// `threads`, results are bit-identical for every setting.
    pub traffic_threads: usize,
}

impl Scenario {
    /// A small default scenario useful in examples and tests.
    pub fn small() -> Self {
        Scenario {
            dims: vec![10, 10],
            seed: 1,
            fault_count: 6,
            placement: FaultPlacement::UniformInterior,
            dynamic: None,
            lambda: 1,
            traffic: TrafficPattern::UniformRandom,
            messages: 10,
            launch_step: 60,
            max_steps: 5_000,
            threads: 1,
            frontier: true,
            probe_threads: 1,
            traffic_threads: 1,
        }
    }

    /// The mesh described by this scenario.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(&self.dims)
    }

    /// The fault plan described by this scenario.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut generator = FaultGenerator::new(self.mesh(), self.seed);
        match self.dynamic {
            None => generator.static_plan(self.fault_count, self.placement),
            Some(mut cfg) => {
                cfg.fault_count = self.fault_count;
                generator.dynamic_plan(cfg, self.placement)
            }
        }
    }

    /// Runs the scenario with probes driven by routers produced by `router_factory`
    /// (one router instance per probe).
    pub fn run(&self, router_factory: &dyn Fn() -> Box<dyn Router>) -> ScenarioResult {
        let mesh = self.mesh();
        let plan = self.fault_plan();
        let mut net = LgfiNetwork::new(
            mesh.clone(),
            plan,
            NetworkConfig {
                lambda: self.lambda,
                max_probe_steps: self.max_steps,
                threads: self.threads,
                frontier: self.frontier,
                probe_threads: self.probe_threads,
            },
        );
        // Warm-up: run to the launch step so static faults and their information can
        // (partially or fully) stabilise, exactly as a routing that starts at time t
        // with p earlier faults.
        while net.step() < self.launch_step {
            net.run_step();
        }
        // Launch the probes over nodes that are usable at launch time.
        let statuses = net.statuses().to_vec();
        let mut traffic = TrafficGenerator::new(mesh, self.traffic, self.seed ^ 0x5EED);
        let requests = traffic.requests(self.messages, |id| {
            statuses[id] == lgfi_core::status::NodeStatus::Enabled
        });
        for r in &requests {
            net.launch_probe(r.source, r.dest, router_factory());
        }
        net.run_to_completion(self.max_steps);
        ScenarioResult {
            requested: self.messages,
            launched: requests.len(),
            threads: net.threads(),
            reports: net.reports().to_vec(),
            convergence: net.convergence_records().to_vec(),
        }
    }

    /// Runs the scenario as a *concurrent-traffic* experiment: instead of a fixed
    /// batch of independent probes, multi-flit packets (worms) are injected at
    /// `spec.injection_rate` packets per cycle (drawn from this scenario's traffic
    /// pattern over nodes usable at injection time) and contend for
    /// finite-capacity links, virtual channels and flit-buffer credits while the
    /// fault plan unfolds, so queueing latency and accepted throughput become
    /// observable.
    ///
    /// Accepts anything convertible into a [`TrafficSpec`] — a spec built with
    /// the [`TrafficSpec::at_rate`] builder, or a legacy [`TrafficLoad`].  The
    /// scenario's own `max_steps` and `traffic_threads` override the spec's
    /// `max_packet_cycles` and `traffic_threads` fields.
    ///
    /// One network step is one traffic cycle.  The first `launch_step` steps run
    /// without traffic (information warm-up, as in [`Scenario::run`]), then
    /// `spec.cycles` injection cycles, then up to `spec.drain_cycles` further
    /// cycles to let the in-flight packets finish.
    pub fn run_traffic(
        &self,
        load: impl Into<TrafficSpec>,
        router_factory: &dyn Fn() -> Box<dyn Router>,
    ) -> TrafficResult {
        let spec = load
            .into()
            .max_packet_cycles(self.max_steps)
            .traffic_threads(self.traffic_threads);
        let mesh = self.mesh();
        let plan = self.fault_plan();
        let mut net = LgfiNetwork::new(
            mesh.clone(),
            plan,
            NetworkConfig {
                lambda: self.lambda,
                max_probe_steps: self.max_steps,
                threads: self.threads,
                frontier: self.frontier,
                probe_threads: self.probe_threads,
            },
        );
        while net.step() < self.launch_step {
            net.run_step();
        }
        let mut engine = TrafficEngine::new(mesh.clone(), spec, router_factory);
        let mut traffic = TrafficGenerator::new(mesh, self.traffic, self.seed ^ 0x00AF_F1C0);
        let mut injection = InjectionProcess::new(spec.injection_rate);
        for _ in 0..spec.cycles {
            for _ in 0..injection.packets_this_cycle() {
                let statuses = net.statuses();
                if let Some(req) = traffic.next_request(|id| statuses[id] == NodeStatus::Enabled) {
                    engine.inject(req.source, req.dest);
                }
            }
            net.run_traffic_step(&mut engine);
        }
        let mut drained = 0u64;
        while engine.in_flight() > 0 && drained < spec.drain_cycles {
            net.run_traffic_step(&mut engine);
            drained += 1;
        }
        TrafficResult {
            offered_load: spec.injection_rate,
            measured_cycles: spec.cycles,
            traffic_threads: engine.traffic_threads(),
            router: engine.router_name(),
            stats: engine.stats().clone(),
            records: engine.records().to_vec(),
        }
    }
}

/// The offered load of a [`Scenario::run_traffic`] experiment.
///
/// Superseded by the unified [`TrafficSpec`] builder, which also carries the
/// wormhole knobs (flits per packet, virtual channels, buffer depth, escape
/// class).  Any `TrafficLoad` lifts losslessly onto a `TrafficSpec` via `From`,
/// so existing call sites keep compiling for one release.
#[deprecated(
    since = "0.10.0",
    note = "use the unified builder-style lgfi_core::TrafficSpec instead"
)]
#[derive(Debug, Clone, Copy)]
pub struct TrafficLoad {
    /// Packets injected per cycle (fractional rates are realised exactly on average
    /// by a deterministic accumulator).
    pub injection_rate: f64,
    /// Cycles during which packets are injected.
    pub cycles: u64,
    /// Extra cycles granted after the injection window for in-flight packets to
    /// finish.
    pub drain_cycles: u64,
    /// Packets one directed link can carry per cycle.
    pub link_capacity: u32,
}

// Deprecated shim: kept for one release so downstream callers can migrate.
#[allow(deprecated)]
impl TrafficLoad {
    /// A standard load at the given injection rate: 200 injection cycles, a
    /// generous drain window, unit link capacity.
    pub fn at_rate(injection_rate: f64) -> Self {
        TrafficLoad {
            injection_rate,
            cycles: 200,
            drain_cycles: 5_000,
            link_capacity: 1,
        }
    }
}

// Deprecated shim: kept for one release so downstream callers can migrate.
#[allow(deprecated)]
impl From<TrafficLoad> for TrafficSpec {
    fn from(load: TrafficLoad) -> TrafficSpec {
        TrafficSpec::at_rate(load.injection_rate)
            .cycles(load.cycles)
            .drain_cycles(load.drain_cycles)
            .link_capacity(load.link_capacity)
    }
}

// Deprecated shim: kept for one release so downstream callers can migrate.
#[allow(deprecated)]
impl From<&TrafficLoad> for TrafficSpec {
    fn from(load: &TrafficLoad) -> TrafficSpec {
        (*load).into()
    }
}

/// The outcome of a [`Scenario::run_traffic`] run.
#[derive(Debug, Clone)]
pub struct TrafficResult {
    /// The offered load (packets per cycle).
    pub offered_load: f64,
    /// Injection-window cycles (the throughput denominator).
    pub measured_cycles: u64,
    /// Resolved traffic decision-worker count the engine ran with (1 = serial).
    pub traffic_threads: usize,
    /// Name of the router that drove the packets.
    pub router: &'static str,
    /// Accumulated counters (latency distribution, stalls, hops).
    pub stats: TrafficStats,
    /// Per-packet records in retirement order.
    pub records: Vec<PacketRecord>,
}

impl TrafficResult {
    /// Number of delivered packets.
    pub fn delivered(&self) -> usize {
        self.stats.delivered() as usize
    }

    /// Delivered fraction of the injected packets (1.0 when nothing was injected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.stats.injected() == 0 {
            1.0
        } else {
            self.stats.delivered() as f64 / self.stats.injected() as f64
        }
    }

    /// Accepted throughput: packets delivered per injection-window cycle
    /// (deliveries completed while draining count towards the numerator).
    pub fn accepted_throughput(&self) -> f64 {
        self.stats.delivered() as f64 / self.measured_cycles.max(1) as f64
    }

    /// Mean delivered latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.stats.mean_latency()
    }

    /// 99th-percentile delivered latency in cycles (0 before any delivery).
    pub fn p99_latency(&self) -> u64 {
        self.stats.latency_quantile(0.99).unwrap_or(0)
    }

    /// Number of worms the cycle-driven deadlock detector tore down.
    pub fn deadlocked(&self) -> u64 {
        self.stats.deadlocked()
    }
}

/// The outcome of running a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Number of probes requested by the scenario.
    pub requested: usize,
    /// Number of probes actually launched (usable endpoints found).
    pub launched: usize,
    /// Resolved worker-thread count the network ran with (`1` = serial), recorded so
    /// summaries and benchmark output state which execution mode produced the numbers.
    pub threads: usize,
    /// Per-probe reports.
    pub reports: Vec<ProbeReport>,
    /// Convergence records of the fault-information constructions.
    pub convergence: Vec<ConvergenceRecord>,
}

impl ScenarioResult {
    /// Number of delivered probes.
    pub fn delivered(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome.delivered())
            .count()
    }

    /// Delivery ratio over the launched probes.
    pub fn delivery_ratio(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.delivered() as f64 / self.reports.len() as f64
        }
    }

    /// Mean number of detour steps over the delivered probes.
    pub fn mean_detours(&self) -> f64 {
        let detours: Vec<u64> = self
            .reports
            .iter()
            .filter_map(|r| r.outcome.detours())
            .collect();
        if detours.is_empty() {
            0.0
        } else {
            detours.iter().sum::<u64>() as f64 / detours.len() as f64
        }
    }

    /// Mean path stretch over the delivered probes.
    pub fn mean_stretch(&self) -> f64 {
        let stretches: Vec<f64> = self
            .reports
            .iter()
            .filter_map(|r| r.outcome.stretch())
            .collect();
        if stretches.is_empty() {
            0.0
        } else {
            stretches.iter().sum::<f64>() / stretches.len() as f64
        }
    }

    /// The largest `a_i + b_i + c_i` over all disturbances (how long the information
    /// took to converge).
    pub fn max_convergence_rounds(&self) -> u64 {
        self.convergence
            .iter()
            .map(|c| c.total_rounds())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::routing::LgfiRouter;

    #[test]
    fn small_scenario_runs_and_delivers() {
        let scenario = Scenario::small();
        let result = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(result.requested, 10);
        assert!(result.launched > 0);
        assert_eq!(result.reports.len(), result.launched);
        assert!(
            result.delivery_ratio() > 0.9,
            "ratio {}",
            result.delivery_ratio()
        );
        assert!(result.mean_stretch() >= 1.0 || result.reports.is_empty());
        assert!(!result.convergence.is_empty());
        assert!(result.max_convergence_rounds() > 0);
    }

    #[test]
    fn dynamic_scenario_with_recovery_runs() {
        let scenario = Scenario {
            dims: vec![12, 12],
            seed: 3,
            fault_count: 3,
            placement: FaultPlacement::UniformInterior,
            dynamic: Some(DynamicFaultConfig {
                fault_count: 3,
                first_step: 5,
                interval: 60,
                with_recovery: true,
                recovery_delay: 120,
            }),
            lambda: 2,
            traffic: TrafficPattern::CornerToCorner,
            messages: 4,
            launch_step: 0,
            max_steps: 5_000,
            threads: 1,
            frontier: true,
            probe_threads: 1,
            traffic_threads: 1,
        };
        let result = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(result.launched, 4);
        assert_eq!(
            result.delivered(),
            4,
            "corner-to-corner probes must all deliver"
        );
        // Faults and recoveries both trigger convergence records.
        assert!(result.convergence.len() >= 3);
    }

    #[test]
    fn scenario_results_are_deterministic() {
        let scenario = Scenario::small();
        let a = scenario.run(&|| Box::new(LgfiRouter::new()));
        let b = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(a.delivered(), b.delivered());
        assert_eq!(a.mean_detours(), b.mean_detours());
        assert_eq!(a.convergence, b.convergence);
    }

    #[test]
    fn scenario_frontier_knob_does_not_change_results() {
        let mut scenario = Scenario::small();
        scenario.dims = vec![12, 12];
        scenario.fault_count = 5;
        assert!(scenario.frontier, "frontier scheduling is the default");
        let on = scenario.run(&|| Box::new(LgfiRouter::new()));
        scenario.frontier = false;
        let off = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(on.delivered(), off.delivered());
        assert_eq!(on.convergence, off.convergence);
        assert_eq!(format!("{:?}", on.reports), format!("{:?}", off.reports));
    }

    #[test]
    fn traffic_run_delivers_under_load() {
        let mut scenario = Scenario::small();
        scenario.fault_count = 4;
        let load = TrafficSpec::at_rate(0.5).cycles(100).drain_cycles(2_000);
        let result = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        assert_eq!(result.router, "lgfi");
        assert_eq!(result.traffic_threads, 1);
        assert!(result.stats.injected() >= 45, "{:?}", result.stats);
        assert!(
            result.delivery_ratio() > 0.95,
            "ratio {}",
            result.delivery_ratio()
        );
        assert!(result.accepted_throughput() > 0.0);
        assert!(result.mean_latency() >= 1.0);
        assert!(result.p99_latency() >= result.stats.latency_quantile(0.5).unwrap_or(0));
        assert_eq!(result.records.len(), result.stats.injected() as usize);
    }

    #[test]
    fn traffic_runs_are_deterministic_and_thread_invariant() {
        let mut scenario = Scenario::small();
        scenario.dims = vec![12, 12];
        scenario.fault_count = 5;
        let load = TrafficSpec::at_rate(0.8).flits_per_packet(4);
        let a = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        let b = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        assert_eq!(a.records, b.records);
        assert_eq!(a.stats, b.stats);
        scenario.traffic_threads = 4;
        let sharded = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        assert_eq!(sharded.traffic_threads, 4);
        assert_eq!(a.records, sharded.records, "sharding must be invisible");
        assert_eq!(a.stats, sharded.stats);
    }

    #[test]
    // The shim's own test is the one place the deprecated type is used on purpose,
    // and the borrow is the legacy `&TrafficLoad` calling convention under test.
    #[allow(deprecated, clippy::needless_borrows_for_generic_args)]
    fn deprecated_traffic_load_still_drives_run_traffic() {
        let mut scenario = Scenario::small();
        scenario.fault_count = 4;
        let legacy =
            scenario.run_traffic(&TrafficLoad::at_rate(0.5), &|| Box::new(LgfiRouter::new()));
        let spec = scenario.run_traffic(TrafficSpec::at_rate(0.5), &|| Box::new(LgfiRouter::new()));
        assert_eq!(legacy.records, spec.records, "the shim lifts losslessly");
        assert_eq!(legacy.stats, spec.stats);
    }

    #[test]
    fn multi_flit_worms_deliver_through_faults() {
        let mut scenario = Scenario::small();
        scenario.fault_count = 4;
        let load = TrafficSpec::at_rate(0.4).cycles(80).flits_per_packet(8);
        let result = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        assert!(result.stats.injected() > 0);
        assert!(
            result.delivery_ratio() > 0.95,
            "ratio {}",
            result.delivery_ratio()
        );
        assert_eq!(
            result.deadlocked(),
            0,
            "escape VCs keep worms deadlock-free"
        );
        // Each worm needs at least F - 1 extra cycles to stream its body.
        assert!(result.mean_latency() >= 8.0, "{}", result.mean_latency());
    }

    #[test]
    fn zero_injection_rate_produces_no_traffic() {
        let scenario = Scenario::small();
        let load = TrafficSpec::at_rate(0.0);
        let result = scenario.run_traffic(load, &|| Box::new(LgfiRouter::new()));
        assert_eq!(result.stats.injected(), 0);
        assert_eq!(result.records.len(), 0);
        assert_eq!(
            result.delivery_ratio(),
            1.0,
            "nothing offered, nothing lost"
        );
        assert_eq!(result.accepted_throughput(), 0.0);
    }

    #[test]
    fn scenario_threads_knob_does_not_change_results() {
        let mut scenario = Scenario::small();
        scenario.dims = vec![12, 12];
        scenario.fault_count = 5;
        let serial = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(serial.threads, 1);
        scenario.threads = 4;
        let parallel = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(parallel.threads, 4);
        assert_eq!(serial.delivered(), parallel.delivered());
        assert_eq!(serial.convergence, parallel.convergence);
        assert_eq!(
            format!("{:?}", serial.reports),
            format!("{:?}", parallel.reports)
        );
    }
}
