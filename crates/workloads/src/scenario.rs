//! Complete experiment scenarios: mesh + fault schedule + traffic + step model.

use lgfi_core::network::{ConvergenceRecord, LgfiNetwork, NetworkConfig, ProbeReport};
use lgfi_core::routing::Router;
use lgfi_sim::FaultPlan;
use lgfi_topology::Mesh;

use crate::faultgen::{DynamicFaultConfig, FaultGenerator, FaultPlacement};
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// A self-contained experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Mesh radices.
    pub dims: Vec<i32>,
    /// Random seed (drives fault placement and traffic).
    pub seed: u64,
    /// Number of fault occurrences.
    pub fault_count: usize,
    /// Fault placement policy.
    pub placement: FaultPlacement,
    /// If `Some`, faults occur dynamically with this configuration; if `None`, all
    /// faults are static (present from step 0).
    pub dynamic: Option<DynamicFaultConfig>,
    /// Rounds of information exchange per step (λ).
    pub lambda: u64,
    /// Traffic pattern for the probes.
    pub traffic: TrafficPattern,
    /// Number of probes to route.
    pub messages: usize,
    /// Step at which the probes are launched.
    pub launch_step: u64,
    /// Hard cap on the total number of steps simulated.
    pub max_steps: u64,
    /// Worker threads for the network's information rounds (`1` = serial, `0` = one
    /// per available core); results are bit-identical for every setting.
    pub threads: usize,
    /// Active-frontier scheduling for the labeling rounds (on by default); like
    /// `threads`, an execution detail that never changes results.
    pub frontier: bool,
    /// Worker threads for the per-step probe routing decisions (`1` = serial, `0` =
    /// one per available core); like `threads`, results are bit-identical for every
    /// setting.
    pub probe_threads: usize,
}

impl Scenario {
    /// A small default scenario useful in examples and tests.
    pub fn small() -> Self {
        Scenario {
            dims: vec![10, 10],
            seed: 1,
            fault_count: 6,
            placement: FaultPlacement::UniformInterior,
            dynamic: None,
            lambda: 1,
            traffic: TrafficPattern::UniformRandom,
            messages: 10,
            launch_step: 60,
            max_steps: 5_000,
            threads: 1,
            frontier: true,
            probe_threads: 1,
        }
    }

    /// The mesh described by this scenario.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(&self.dims)
    }

    /// The fault plan described by this scenario.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut generator = FaultGenerator::new(self.mesh(), self.seed);
        match self.dynamic {
            None => generator.static_plan(self.fault_count, self.placement),
            Some(mut cfg) => {
                cfg.fault_count = self.fault_count;
                generator.dynamic_plan(cfg, self.placement)
            }
        }
    }

    /// Runs the scenario with probes driven by routers produced by `router_factory`
    /// (one router instance per probe).
    pub fn run(&self, router_factory: &dyn Fn() -> Box<dyn Router>) -> ScenarioResult {
        let mesh = self.mesh();
        let plan = self.fault_plan();
        let mut net = LgfiNetwork::new(
            mesh.clone(),
            plan,
            NetworkConfig {
                lambda: self.lambda,
                max_probe_steps: self.max_steps,
                threads: self.threads,
                frontier: self.frontier,
                probe_threads: self.probe_threads,
            },
        );
        // Warm-up: run to the launch step so static faults and their information can
        // (partially or fully) stabilise, exactly as a routing that starts at time t
        // with p earlier faults.
        while net.step() < self.launch_step {
            net.run_step();
        }
        // Launch the probes over nodes that are usable at launch time.
        let statuses = net.statuses().to_vec();
        let mut traffic = TrafficGenerator::new(mesh, self.traffic, self.seed ^ 0x5EED);
        let requests = traffic.requests(self.messages, |id| {
            statuses[id] == lgfi_core::status::NodeStatus::Enabled
        });
        for r in &requests {
            net.launch_probe(r.source, r.dest, router_factory());
        }
        net.run_to_completion(self.max_steps);
        ScenarioResult {
            requested: self.messages,
            launched: requests.len(),
            threads: net.threads(),
            reports: net.reports().to_vec(),
            convergence: net.convergence_records().to_vec(),
        }
    }
}

/// The outcome of running a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Number of probes requested by the scenario.
    pub requested: usize,
    /// Number of probes actually launched (usable endpoints found).
    pub launched: usize,
    /// Resolved worker-thread count the network ran with (`1` = serial), recorded so
    /// summaries and benchmark output state which execution mode produced the numbers.
    pub threads: usize,
    /// Per-probe reports.
    pub reports: Vec<ProbeReport>,
    /// Convergence records of the fault-information constructions.
    pub convergence: Vec<ConvergenceRecord>,
}

impl ScenarioResult {
    /// Number of delivered probes.
    pub fn delivered(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome.delivered())
            .count()
    }

    /// Delivery ratio over the launched probes.
    pub fn delivery_ratio(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.delivered() as f64 / self.reports.len() as f64
        }
    }

    /// Mean number of detour steps over the delivered probes.
    pub fn mean_detours(&self) -> f64 {
        let detours: Vec<u64> = self
            .reports
            .iter()
            .filter_map(|r| r.outcome.detours())
            .collect();
        if detours.is_empty() {
            0.0
        } else {
            detours.iter().sum::<u64>() as f64 / detours.len() as f64
        }
    }

    /// Mean path stretch over the delivered probes.
    pub fn mean_stretch(&self) -> f64 {
        let stretches: Vec<f64> = self
            .reports
            .iter()
            .filter_map(|r| r.outcome.stretch())
            .collect();
        if stretches.is_empty() {
            0.0
        } else {
            stretches.iter().sum::<f64>() / stretches.len() as f64
        }
    }

    /// The largest `a_i + b_i + c_i` over all disturbances (how long the information
    /// took to converge).
    pub fn max_convergence_rounds(&self) -> u64 {
        self.convergence
            .iter()
            .map(|c| c.total_rounds())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::routing::LgfiRouter;

    #[test]
    fn small_scenario_runs_and_delivers() {
        let scenario = Scenario::small();
        let result = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(result.requested, 10);
        assert!(result.launched > 0);
        assert_eq!(result.reports.len(), result.launched);
        assert!(
            result.delivery_ratio() > 0.9,
            "ratio {}",
            result.delivery_ratio()
        );
        assert!(result.mean_stretch() >= 1.0 || result.reports.is_empty());
        assert!(!result.convergence.is_empty());
        assert!(result.max_convergence_rounds() > 0);
    }

    #[test]
    fn dynamic_scenario_with_recovery_runs() {
        let scenario = Scenario {
            dims: vec![12, 12],
            seed: 3,
            fault_count: 3,
            placement: FaultPlacement::UniformInterior,
            dynamic: Some(DynamicFaultConfig {
                fault_count: 3,
                first_step: 5,
                interval: 60,
                with_recovery: true,
                recovery_delay: 120,
            }),
            lambda: 2,
            traffic: TrafficPattern::CornerToCorner,
            messages: 4,
            launch_step: 0,
            max_steps: 5_000,
            threads: 1,
            frontier: true,
            probe_threads: 1,
        };
        let result = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(result.launched, 4);
        assert_eq!(
            result.delivered(),
            4,
            "corner-to-corner probes must all deliver"
        );
        // Faults and recoveries both trigger convergence records.
        assert!(result.convergence.len() >= 3);
    }

    #[test]
    fn scenario_results_are_deterministic() {
        let scenario = Scenario::small();
        let a = scenario.run(&|| Box::new(LgfiRouter::new()));
        let b = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(a.delivered(), b.delivered());
        assert_eq!(a.mean_detours(), b.mean_detours());
        assert_eq!(a.convergence, b.convergence);
    }

    #[test]
    fn scenario_frontier_knob_does_not_change_results() {
        let mut scenario = Scenario::small();
        scenario.dims = vec![12, 12];
        scenario.fault_count = 5;
        assert!(scenario.frontier, "frontier scheduling is the default");
        let on = scenario.run(&|| Box::new(LgfiRouter::new()));
        scenario.frontier = false;
        let off = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(on.delivered(), off.delivered());
        assert_eq!(on.convergence, off.convergence);
        assert_eq!(format!("{:?}", on.reports), format!("{:?}", off.reports));
    }

    #[test]
    fn scenario_threads_knob_does_not_change_results() {
        let mut scenario = Scenario::small();
        scenario.dims = vec![12, 12];
        scenario.fault_count = 5;
        let serial = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(serial.threads, 1);
        scenario.threads = 4;
        let parallel = scenario.run(&|| Box::new(LgfiRouter::new()));
        assert_eq!(parallel.threads, 4);
        assert_eq!(serial.delivered(), parallel.delivered());
        assert_eq!(serial.convergence, parallel.convergence);
        assert_eq!(
            format!("{:?}", serial.reports),
            format!("{:?}", parallel.reports)
        );
    }
}
