//! Deterministic Poisson fail/repair churn.
//!
//! Long-horizon robustness campaigns need fault schedules spanning millions of
//! steps.  Materialising such a schedule as a [`FaultPlan`] up front would cost
//! memory proportional to the horizon; [`ChurnProcess`] instead *streams* the
//! events: [`ChurnProcess::events_at`] emits the events of one step at a time into a
//! caller-owned buffer, in exactly the order [`FaultPlan::new`] would sort them, so
//! the stream can be fed to `LgfiNetwork::run_traffic_step_with` step by step and a
//! 10M-cycle run never holds more than the currently-faulty node set.
//!
//! The process is a marked Poisson process driven by a [`DetRng`]: fault
//! inter-arrival times are exponential with rate [`ChurnConfig::fail_rate`] (so the
//! expected number of fails per step is `fail_rate`), each fault picks a uniformly
//! random currently-alive interior node, and each faulty node repairs after an
//! exponential downtime with mean [`ChurnConfig::mean_downtime`] (at least one
//! step).  Same seed ⇒ bit-identical event stream, independent of how the caller
//! batches its queries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lgfi_sim::{DetRng, FaultEvent, FaultPlan};
use lgfi_topology::{Mesh, NodeId};

/// Parameters of a [`ChurnProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Expected fault occurrences per step (the Poisson rate λ of the fail process).
    pub fail_rate: f64,
    /// Mean steps a faulty node stays down before repairing (exponential, rounded,
    /// at least 1).
    pub mean_downtime: f64,
    /// Hard cap on simultaneously faulty nodes; fault arrivals beyond the cap are
    /// dropped (the arrival time is still consumed, so the stream stays aligned).
    pub max_faulty: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            fail_rate: 0.02,
            mean_downtime: 200.0,
            max_faulty: 64,
        }
    }
}

/// A deterministic streaming Poisson fail/repair process over the mesh interior.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    mesh: Mesh,
    rng: DetRng,
    config: ChurnConfig,
    /// Interior nodes currently alive (order irrelevant; `alive_pos` indexes it).
    alive: Vec<NodeId>,
    /// Position of each node in `alive`, or `usize::MAX` when faulty/non-interior.
    alive_pos: Vec<usize>,
    /// Pending repairs as `(step, node)`, earliest first.
    repairs: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// Continuous time of the next fault arrival.
    next_fail: f64,
    /// Currently faulty node count.
    faulty: usize,
}

impl ChurnProcess {
    /// A churn process over `mesh` seeded with `seed`.
    pub fn new(mesh: Mesh, seed: u64, config: ChurnConfig) -> Self {
        let interior = mesh.interior_region().unwrap_or_else(|| mesh.full_region());
        let mut alive_pos = vec![usize::MAX; mesh.node_count()];
        let mut alive = Vec::new();
        for c in interior.iter_coords() {
            let id = mesh.id_of(&c);
            alive_pos[id] = alive.len();
            alive.push(id);
        }
        let mut process = ChurnProcess {
            mesh,
            rng: DetRng::seed_from_u64(seed),
            config,
            alive,
            alive_pos,
            repairs: BinaryHeap::with_capacity(config.max_faulty + 1),
            next_fail: 0.0,
            faulty: 0,
        };
        process.next_fail = process.exponential_gap();
        process
    }

    /// The mesh the process runs over.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Currently faulty node count.
    pub fn faulty_count(&self) -> usize {
        self.faulty
    }

    /// One exponential fail inter-arrival gap in steps.
    fn exponential_gap(&mut self) -> f64 {
        // unit() is in [0, 1), so 1 - unit() is in (0, 1] and ln is finite.
        -(1.0 - self.rng.unit()).ln() / self.config.fail_rate.max(f64::MIN_POSITIVE)
    }

    /// One exponential downtime, rounded to whole steps, at least 1.
    fn downtime(&mut self) -> u64 {
        let d = -(1.0 - self.rng.unit()).ln() * self.config.mean_downtime.max(0.0);
        (d.round() as u64).max(1)
    }

    fn remove_alive(&mut self, node: NodeId) {
        let pos = self.alive_pos[node];
        let last = self.alive.len() - 1;
        self.alive.swap(pos, last);
        self.alive_pos[self.alive[pos]] = pos;
        self.alive.pop();
        self.alive_pos[node] = usize::MAX;
    }

    fn push_alive(&mut self, node: NodeId) {
        self.alive_pos[node] = self.alive.len();
        self.alive.push(node);
    }

    /// Emits the events taking effect at `step` into `out` (clearing it first), in
    /// the `(step, node)` order a [`FaultPlan`] would store them.  Steps must be
    /// queried in strictly increasing order; `out`'s capacity is reused, so the
    /// steady state allocates nothing beyond occasional heap growth of the pending
    /// repair queue.
    pub fn events_at(&mut self, step: u64, out: &mut Vec<FaultEvent>) {
        out.clear();
        // Fault arrivals landing in this step.  The repair queue never exceeds
        // `max_faulty` entries (pre-reserved), so admitting a fault does not allocate.
        while self.next_fail < (step + 1) as f64 {
            let gap = self.exponential_gap();
            if !self.alive.is_empty() && self.faulty < self.config.max_faulty {
                let victim = self.alive[self.rng.below(self.alive.len())];
                self.remove_alive(victim);
                self.faulty += 1;
                let repair = step + self.downtime();
                self.repairs.push(Reverse((repair, victim)));
                out.push(FaultEvent::fail(step, victim));
            }
            self.next_fail += gap;
        }
        // Repairs due this step.  A node repaired here re-enters `alive` only after
        // the arrival loop above ran, so it can never fail again at the same step.
        while let Some(&Reverse((when, node))) = self.repairs.peek() {
            if when > step {
                break;
            }
            self.repairs.pop();
            self.push_alive(node);
            self.faulty -= 1;
            out.push(FaultEvent::recover(step, node));
        }
        out.sort_unstable_by_key(|e| e.node);
    }

    /// Materialises the first `horizon` steps of the stream as a [`FaultPlan`]
    /// (tests and short campaigns; long campaigns should stream
    /// [`ChurnProcess::events_at`] instead).
    pub fn plan(&mut self, horizon: u64) -> FaultPlan {
        let mut events = Vec::new();
        let mut buf = Vec::new();
        for step in 0..horizon {
            self.events_at(step, &mut buf);
            events.extend_from_slice(&buf);
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_materialised_plan() {
        let mesh = Mesh::cubic(10, 2);
        let config = ChurnConfig {
            fail_rate: 0.1,
            mean_downtime: 30.0,
            max_faulty: 8,
        };
        let plan = ChurnProcess::new(mesh.clone(), 7, config).plan(500);
        let mut streamed = ChurnProcess::new(mesh, 7, config);
        let mut buf = Vec::new();
        let mut collected = Vec::new();
        for step in 0..500 {
            streamed.events_at(step, &mut buf);
            collected.extend_from_slice(&buf);
        }
        assert_eq!(FaultPlan::new(collected), plan);
        assert!(!plan.is_empty(), "rate 0.1 over 500 steps must fire");
    }

    #[test]
    fn plans_are_validate_clean() {
        for seed in 0..5u64 {
            let mesh = Mesh::cubic(12, 2);
            let mut churn = ChurnProcess::new(
                mesh.clone(),
                seed,
                ChurnConfig {
                    fail_rate: 0.2,
                    mean_downtime: 20.0,
                    max_faulty: 10,
                },
            );
            let plan = churn.plan(1_000);
            assert!(
                plan.validate(&mesh).is_empty(),
                "seed {seed}: {:?}",
                plan.validate(&mesh)
            );
            assert!(plan.peak_fault_count() <= 10, "cap must hold");
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let mesh = Mesh::cubic(10, 2);
        let a = ChurnProcess::new(mesh.clone(), 42, ChurnConfig::default()).plan(2_000);
        let b = ChurnProcess::new(mesh.clone(), 42, ChurnConfig::default()).plan(2_000);
        let c = ChurnProcess::new(mesh, 43, ChurnConfig::default()).plan(2_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_controls_the_expected_fault_count() {
        let mesh = Mesh::cubic(16, 2);
        let mut churn = ChurnProcess::new(
            mesh,
            3,
            ChurnConfig {
                fail_rate: 0.05,
                mean_downtime: 10.0,
                max_faulty: 1_000,
            },
        );
        let plan = churn.plan(10_000);
        let fails = plan.occurrence_times_iter().count();
        // Expected 500; allow generous slack for a single sample path.
        assert!(
            (300..700).contains(&fails),
            "expected ~500 fails, got {fails}"
        );
    }

    #[test]
    fn faults_stay_interior() {
        let mesh = Mesh::cubic(8, 2);
        let mut churn = ChurnProcess::new(
            mesh.clone(),
            11,
            ChurnConfig {
                fail_rate: 0.3,
                mean_downtime: 15.0,
                max_faulty: 12,
            },
        );
        let plan = churn.plan(2_000);
        for e in plan.events() {
            assert!(!mesh.on_outermost_surface(&mesh.coord_of(e.node)));
        }
    }
}
