//! Parallel parameter sweeps.
//!
//! Experiment tables are produced by running many independent trials (different seeds,
//! fault counts, mesh sizes).  [`run_trials`] executes them on all available cores via
//! a per-sweep [`lgfi_sim::WorkerPool`] while keeping the output order identical to
//! the input order, so tables remain deterministic; [`run_trials_on`] takes an
//! explicit worker count so callers can trade sweep-level for engine-level
//! parallelism (see `NetworkConfig::threads`).

/// One point of a parameter sweep, pairing an input with its computed output.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint<I, O> {
    /// The input parameters of the trial.
    pub input: I,
    /// The trial's result.
    pub output: O,
}

/// Runs `f` over every input, in parallel on all available cores, preserving input
/// order in the output.  Equivalent to [`run_trials_on`] with `threads = 0`.
pub fn run_trials<I, O, F>(inputs: Vec<I>, f: F) -> Vec<SweepPoint<I, O>>
where
    I: Send + Sync + Clone,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_trials_on(0, inputs, f)
}

/// Runs `f` over every input with an explicit sweep worker count (`0` = one worker
/// per available core, `1` = sequential), preserving input order in the output.
///
/// Use `threads = 1` when the trial body itself runs a sharded engine (e.g. an
/// [`LgfiNetwork`](lgfi_core::network::LgfiNetwork) with
/// [`NetworkConfig::threads`](lgfi_core::network::NetworkConfig) > 1), so the two
/// levels of parallelism do not oversubscribe the machine.  Outputs are identical for
/// every setting — only the execution schedule changes.
pub fn run_trials_on<I, O, F>(threads: usize, inputs: Vec<I>, f: F) -> Vec<SweepPoint<I, O>>
where
    I: Send + Sync + Clone,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = lgfi_sim::resolve_threads(threads).min(inputs.len().max(1));
    if threads <= 1 || inputs.len() <= 1 {
        return inputs
            .into_iter()
            .map(|input| {
                let output = f(&input);
                SweepPoint { input, output }
            })
            .collect();
    }

    let mut slots: Vec<Option<SweepPoint<I, O>>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    lgfi_sim::WorkerPool::new(threads).run(threads, |_| loop {
        let idx = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if idx >= inputs.len() {
            break;
        }
        let input = inputs[idx].clone();
        let output = f(&input);
        let point = SweepPoint { input, output };
        // audit:allow(panic): the mutex is only poisoned if a trial panicked first
        let mut guard = slots_mutex.lock().unwrap();
        guard[idx] = Some(point);
    });

    slots
        .into_iter()
        // audit:allow(panic): the pool joined, so every slot was filled
        .map(|s| s.expect("every trial must produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_preserve_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let points = run_trials(inputs.clone(), |&x| x * x);
        assert_eq!(points.len(), 100);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.input, inputs[i]);
            assert_eq!(p.output, inputs[i] * inputs[i]);
        }
    }

    #[test]
    fn single_input_runs_sequentially() {
        let points = run_trials(vec![7u32], |&x| x + 1);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].output, 8);
    }

    #[test]
    fn empty_input_is_fine() {
        let points: Vec<SweepPoint<u32, u32>> = run_trials(vec![], |&x| x);
        assert!(points.is_empty());
    }

    #[test]
    fn explicit_worker_counts_produce_identical_outputs() {
        let inputs: Vec<u64> = (0..40).collect();
        let auto = run_trials_on(0, inputs.clone(), |&x| x.wrapping_mul(31) ^ 5);
        for threads in [1usize, 2, 3, 8] {
            let fixed = run_trials_on(threads, inputs.clone(), |&x| x.wrapping_mul(31) ^ 5);
            assert_eq!(
                auto.iter().map(|p| p.output).collect::<Vec<_>>(),
                fixed.iter().map(|p| p.output).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_results_match_sequential_results() {
        let inputs: Vec<u64> = (0..64).collect();
        let parallel = run_trials(inputs.clone(), |&x| x.wrapping_mul(2654435761) >> 7);
        let sequential: Vec<u64> = inputs
            .iter()
            .map(|&x| x.wrapping_mul(2654435761) >> 7)
            .collect();
        assert_eq!(
            parallel.iter().map(|p| p.output).collect::<Vec<_>>(),
            sequential
        );
    }

    #[test]
    fn trials_actually_use_scenarios() {
        use crate::scenario::Scenario;
        use lgfi_core::routing::LgfiRouter;
        let seeds: Vec<u64> = (0..4).collect();
        let points = run_trials(seeds, |&seed| {
            let mut s = Scenario::small();
            s.dims = vec![8, 8];
            s.fault_count = 3;
            s.messages = 3;
            s.seed = seed;
            s.run(&|| Box::new(LgfiRouter::new())).delivery_ratio()
        });
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.output >= 0.0 && p.output <= 1.0));
    }
}
