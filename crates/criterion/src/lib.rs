//! A minimal, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmarking harness.
//!
//! The build environment for this workspace has no access to crates.io, so this
//! crate re-implements exactly the subset of the criterion API that the benches in
//! `crates/bench/benches/` use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass followed by `sample_size`
//! timed samples whose median per-iteration time is printed to stdout. It is good
//! enough for coarse regression spotting; substitute the real criterion crate (the
//! API is call-compatible) when registry access is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 100, Duration::from_secs(1), f);
        self
    }
}

/// A collection of related benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input value.
    // The real criterion takes `BenchmarkId` by value; the shim mirrors its
    // signature so benches compile against either implementation.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input);
        });
        self
    }

    /// Finishes the group. (The real criterion emits summary reports here.)
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter label,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Drives the timed iterations of one benchmark, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, recording the total elapsed wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimising away a value, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// True when the bench binary was invoked with `--test` (or `--quick`), mirroring
/// `cargo bench -- --test`: every benchmark runs a single iteration as a smoke test
/// instead of being measured (used by CI to keep the bench pass fast).
fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--test" || a == "--quick"))
}

fn run_benchmark<F>(label: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if quick_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{label:<60} smoke: ok ({})",
            format_seconds(b.elapsed.as_secs_f64())
        );
        return;
    }
    // Warm-up and calibration: find an iteration count that takes a measurable slice.
    let mut calibration = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));
    let target = (measurement_time / (sample_size.min(20) as u32)).max(Duration::from_micros(200));
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size.min(20));
    for _ in 0..sample_size.min(20) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{label:<60} time: [{}]", format_seconds(median));
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::new("f", "").to_string(), "f");
    }

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(1));
        let mut total = 0u64;
        group.bench_function("sum", |b| b.iter(|| total += 1));
        group.finish();
        assert!(total > 0);
    }
}
