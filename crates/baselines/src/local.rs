//! Local-information-only backtracking PCS routing.
//!
//! The same backtracking probe engine as Algorithm 3, but without any distributed
//! fault information: a node only knows the detected status of its immediate
//! neighbors.  Preferred directions are therefore never downgraded to
//! "preferred-but-detour"; the probe discovers blocks only by bumping into them, which
//! is exactly the *routing difficulty* (extra detours and backtracking inside dead-end
//! regions) the paper's limited-global information is designed to avoid.

use lgfi_core::routing::{LgfiRouter, RouteCtx, Router, RoutingDecision};

/// Backtracking PCS routing using neighbor-status information only.
#[derive(Debug, Clone, Default)]
pub struct LocalInfoRouter {
    inner: LgfiRouter,
}

impl LocalInfoRouter {
    /// Creates the router.
    pub fn new() -> Self {
        LocalInfoRouter {
            inner: LgfiRouter::new(),
        }
    }
}

impl Router for LocalInfoRouter {
    fn name(&self) -> &'static str {
        "local-only"
    }

    fn decide(&self, ctx: &RouteCtx<'_>) -> RoutingDecision {
        // Strip the limited-global information: the decision is made exactly like
        // Algorithm 3 but with an empty boundary store.  The context is `Copy`
        // borrows all the way down, so the stripped variant costs nothing.
        let stripped = RouteCtx {
            boundary_info: &[],
            global_blocks: &[],
            ..*ctx
        };
        self.inner.decide(&stripped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::block::BlockSet;
    use lgfi_core::boundary::BoundaryMap;
    use lgfi_core::labeling::LabelingEngine;
    use lgfi_core::routing::route_static;
    use lgfi_topology::{coord, Coord, Mesh};

    fn outcome_with(
        router: &dyn Router,
        mesh: &Mesh,
        faults: &[Coord],
        s: &Coord,
        d: &Coord,
    ) -> lgfi_core::routing::ProbeOutcome {
        let mut eng = LabelingEngine::new(mesh.clone());
        eng.apply_faults(faults);
        let blocks = BlockSet::extract(mesh, eng.statuses());
        let boundary = BoundaryMap::construct(mesh, &blocks);
        route_static(
            mesh,
            eng.statuses(),
            blocks.blocks(),
            &boundary,
            router,
            mesh.id_of(s),
            mesh.id_of(d),
            50_000,
        )
    }

    #[test]
    fn delivers_without_faults_minimally() {
        let mesh = Mesh::cubic(9, 3);
        let out = outcome_with(
            &LocalInfoRouter::new(),
            &mesh,
            &[],
            &coord![0, 0, 0],
            &coord![8, 8, 8],
        );
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
    }

    #[test]
    fn still_delivers_around_blocks_but_never_beats_the_informed_router() {
        // A wide wall with a gap far to the side: the local router wanders into the
        // concave pocket, the LGFI router is warned at the boundary.
        let mesh = Mesh::cubic(20, 2);
        let mut faults = Vec::new();
        for x in 4..=15 {
            faults.push(coord![x, 9]);
            faults.push(coord![x, 10]);
        }
        let s = coord![9, 2];
        let d = coord![9, 17];
        let local = outcome_with(&LocalInfoRouter::new(), &mesh, &faults, &s, &d);
        let informed = outcome_with(
            &lgfi_core::routing::LgfiRouter::new(),
            &mesh,
            &faults,
            &s,
            &d,
        );
        assert!(local.delivered());
        assert!(informed.delivered());
        assert!(
            informed.steps <= local.steps,
            "informed {} vs local {}",
            informed.steps,
            local.steps
        );
    }

    #[test]
    fn ignores_boundary_information_by_construction() {
        // Even when the context carries boundary entries, the local router's decision
        // matches what it would do with none: verified indirectly by the name and the
        // behaviour equivalence on a fault-free mesh.
        let mesh = Mesh::cubic(6, 2);
        let out_local = outcome_with(
            &LocalInfoRouter::new(),
            &mesh,
            &[],
            &coord![0, 0],
            &coord![5, 5],
        );
        let out_lgfi = outcome_with(
            &lgfi_core::routing::LgfiRouter::new(),
            &mesh,
            &[],
            &coord![0, 0],
            &coord![5, 5],
        );
        assert_eq!(out_local.steps, out_lgfi.steps);
        assert_eq!(LocalInfoRouter::new().name(), "local-only");
    }
}
