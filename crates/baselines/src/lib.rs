//! # lgfi-baselines
//!
//! Comparison routers for the LGFI reproduction.  The paper motivates its
//! limited-global model against two extremes:
//!
//! * *"Many traditional models assume all the nodes know global fault information"* —
//!   represented here by [`GlobalInfoRouter`] (every node sees every block with zero
//!   distribution delay) and by [`StaticBlockRouter`], a Wu-\[14\]-style faulty-block
//!   adaptive router that takes a one-shot global snapshot at launch time and never
//!   updates it;
//! * *"without fault information, the routing process may enter a region where all
//!   minimal paths to the destination are blocked"* — represented by
//!   [`LocalInfoRouter`] (a backtracking PCS probe that only sees the detected status
//!   of its neighbors) and by [`DimensionOrderRouter`] (deterministic e-cube routing
//!   with no fault tolerance at all).
//!
//! All four implement the [`Router`] trait from `lgfi-core`, so they can be driven by
//! the same static probe engine ([`lgfi_core::routing::route_static`]) and by the
//! dynamic [`LgfiNetwork`](lgfi_core::network::LgfiNetwork) step loop, which is how the
//! routing-comparison experiments are produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dor;
pub mod global;
pub mod local;
pub mod wu_block;

pub use dor::DimensionOrderRouter;
pub use global::GlobalInfoRouter;
pub use local::LocalInfoRouter;
pub use wu_block::StaticBlockRouter;

use lgfi_core::routing::Router;

/// All baseline routers plus the paper's router, boxed, for sweep harnesses that want
/// to iterate over every strategy.
pub fn all_routers() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(lgfi_core::routing::LgfiRouter::new()),
        Box::new(GlobalInfoRouter::new()),
        Box::new(LocalInfoRouter::new()),
        Box::new(DimensionOrderRouter::new()),
        Box::new(StaticBlockRouter::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_routers_have_distinct_names() {
        let routers = all_routers();
        let mut names: Vec<&str> = routers.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), 5);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5, "router names must be unique");
    }
}
