//! Wu-style minimal adaptive faulty-block routing.
//!
//! A baseline in the spirit of Wu's fault-tolerant adaptive *and minimal* routing in
//! n-D meshes \[14\], which the paper builds on: every node knows the (static) faulty
//! blocks, and the routing only ever takes preferred directions, choosing among them
//! one that does not lead into a dangerous area.  If no such preferred direction
//! exists (the source was unsafe, or a dynamic fault appeared after launch), the
//! routing fails instead of detouring — minimality is never given up.
//!
//! Comparing this router with the LGFI router isolates the value of the *detour*
//! machinery (spare-along-block directions, backtracking, boundary warnings) when
//! sources are unsafe or faults are dynamic.

use lgfi_core::routing::{RouteCtx, Router, RoutingDecision};
use lgfi_core::status::NodeStatus;
use lgfi_topology::{Direction, Region};

/// Minimal adaptive routing over a global snapshot of the faulty blocks.
#[derive(Debug, Clone, Default)]
pub struct StaticBlockRouter;

impl StaticBlockRouter {
    /// Creates the router.
    pub fn new() -> Self {
        StaticBlockRouter
    }

    /// True if stepping from the current node in `dir` enters a region from which the
    /// destination is cut off minimally by `block` (the Section-2.2 dangerous-area
    /// test applied with global knowledge).
    fn hop_is_dangerous(ctx: &RouteCtx<'_>, dir: Direction, block: &Region) -> bool {
        let next = ctx.current.step(dir);
        for guard in Direction::iter_all(ctx.mesh.ndim()) {
            let dim = guard.dim;
            let dest_beyond = if guard.positive {
                ctx.dest[dim] > block.hi()[dim]
            } else {
                ctx.dest[dim] < block.lo()[dim]
            };
            let next_in_shadow = if guard.positive {
                next[dim] < block.lo()[dim]
            } else {
                next[dim] > block.hi()[dim]
            };
            let cross = (0..block.ndim()).filter(|&d| d != dim).all(|d| {
                next[d] >= block.lo()[d]
                    && next[d] <= block.hi()[d]
                    && ctx.dest[d] >= block.lo()[d]
                    && ctx.dest[d] <= block.hi()[d]
            });
            if dest_beyond && next_in_shadow && cross {
                return true;
            }
        }
        false
    }
}

impl Router for StaticBlockRouter {
    fn name(&self) -> &'static str {
        "wu-minimal-block"
    }

    fn decide(&self, ctx: &RouteCtx<'_>) -> RoutingDecision {
        if ctx.current_status == NodeStatus::Disabled {
            return RoutingDecision::Fail;
        }
        let mut best: Option<(Direction, i64)> = None;
        for dir in Direction::iter_all(ctx.mesh.ndim()) {
            if !ctx.is_preferred(dir) || ctx.used.contains(dir) {
                continue;
            }
            match ctx.neighbor_status(dir) {
                Some(NodeStatus::Enabled) | Some(NodeStatus::Clean) => {}
                _ => continue,
            }
            if ctx
                .global_blocks
                .iter()
                .any(|b| Self::hop_is_dangerous(ctx, dir, &b.region))
            {
                continue;
            }
            let offset = (ctx.dest[dir.dim] - ctx.current[dir.dim]).abs() as i64;
            let score = -offset * 16 + dir.index() as i64;
            if best.map(|(_, s)| score < s).unwrap_or(true) {
                best = Some((dir, score));
            }
        }
        match best {
            Some((dir, _)) => RoutingDecision::Forward(dir),
            None => RoutingDecision::Fail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::block::BlockSet;
    use lgfi_core::boundary::BoundaryMap;
    use lgfi_core::labeling::LabelingEngine;
    use lgfi_core::routing::{route_static, ProbeStatus};
    use lgfi_topology::{coord, Coord, Mesh};

    fn run(
        mesh: &Mesh,
        faults: &[Coord],
        s: &Coord,
        d: &Coord,
    ) -> lgfi_core::routing::ProbeOutcome {
        let mut eng = LabelingEngine::new(mesh.clone());
        eng.apply_faults(faults);
        let blocks = BlockSet::extract(mesh, eng.statuses());
        let boundary = BoundaryMap::construct(mesh, &blocks);
        route_static(
            mesh,
            eng.statuses(),
            blocks.blocks(),
            &boundary,
            &StaticBlockRouter::new(),
            mesh.id_of(s),
            mesh.id_of(d),
            10_000,
        )
    }

    #[test]
    fn safe_sources_are_routed_minimally() {
        let mesh = Mesh::cubic(12, 2);
        let faults = [coord![8, 8], coord![9, 9], coord![8, 9], coord![9, 8]];
        let out = run(&mesh, &faults, &coord![0, 0], &coord![6, 6]);
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
    }

    #[test]
    fn routes_minimally_around_a_block_when_a_minimal_path_exists() {
        // Source below the block, destination above-left of it: a minimal path exists
        // by moving left first, and the danger test steers the router onto it.
        let mesh = Mesh::cubic(12, 2);
        let faults = [coord![5, 5], coord![6, 6], coord![5, 6], coord![6, 5]];
        let out = run(&mesh, &faults, &coord![5, 2], &coord![2, 9]);
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
    }

    #[test]
    fn fails_rather_than_detours_when_every_minimal_path_is_blocked() {
        // Destination directly above the block, source directly below it: no minimal
        // path exists; the minimal router gives up where the LGFI router detours.
        let mesh = Mesh::cubic(12, 2);
        let faults = [coord![5, 5], coord![6, 6], coord![5, 6], coord![6, 5]];
        let out = run(&mesh, &faults, &coord![5, 2], &coord![6, 9]);
        assert_eq!(out.status, ProbeStatus::Failed);
        let lgfi = {
            let mut eng = LabelingEngine::new(mesh.clone());
            eng.apply_faults(&faults);
            let blocks = BlockSet::extract(&mesh, eng.statuses());
            let boundary = BoundaryMap::construct(&mesh, &blocks);
            route_static(
                &mesh,
                eng.statuses(),
                blocks.blocks(),
                &boundary,
                &lgfi_core::routing::LgfiRouter::new(),
                mesh.id_of(&coord![5, 2]),
                mesh.id_of(&coord![6, 9]),
                10_000,
            )
        };
        assert!(
            lgfi.delivered(),
            "the LGFI router detours and still delivers"
        );
    }

    #[test]
    fn fault_free_routing_is_minimal() {
        let mesh = Mesh::cubic(9, 3);
        let out = run(&mesh, &[], &coord![1, 1, 1], &coord![7, 0, 6]);
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
        assert_eq!(StaticBlockRouter::new().name(), "wu-minimal-block");
    }
}
