//! Idealised global-information adaptive routing.
//!
//! The "traditional model" the paper contrasts against: every node knows every faulty
//! block instantly (zero distribution delay, no memory limit).  At every node the
//! criticality test of Section 2.2 is evaluated against *all* blocks, not only the
//! ones whose boundary happens to pass through the node, so the router never enters a
//! dangerous area knowingly.
//!
//! This router is an upper bound on what any information-distribution scheme can
//! achieve with the same decision rule; the point of the comparison experiments is
//! that the limited-global model tracks it closely at a small fraction of the memory
//! and update cost.

use std::cell::RefCell;

use lgfi_core::boundary::BoundaryEntry;
use lgfi_core::routing::{LgfiRouter, RouteCtx, Router, RoutingDecision};
use lgfi_topology::Direction;

/// Adaptive routing with instantaneous global block knowledge.
#[derive(Debug, Default)]
pub struct GlobalInfoRouter {
    inner: LgfiRouter,
    /// Recycled scratch for the synthesised global boundary entries: cleared and
    /// refilled per decision, so a warm router allocates nothing per hop.  Interior
    /// mutability keeps [`Router::decide`]'s `&self` signature; routers are owned by
    /// exactly one probe worker at a time (`Router: Send`, not `Sync`), so the
    /// borrow can never be contended.
    scratch: RefCell<Vec<BoundaryEntry>>,
}

impl GlobalInfoRouter {
    /// Creates the router.
    pub fn new() -> Self {
        GlobalInfoRouter {
            inner: LgfiRouter::new(),
            scratch: RefCell::new(Vec::new()),
        }
    }
}

impl Clone for GlobalInfoRouter {
    fn clone(&self) -> Self {
        // Scratch contents are per-decision transients; a clone starts cold.
        GlobalInfoRouter {
            inner: self.inner.clone(),
            scratch: RefCell::new(Vec::new()),
        }
    }
}

impl Router for GlobalInfoRouter {
    fn name(&self) -> &'static str {
        "global-info"
    }

    fn decide(&self, ctx: &RouteCtx<'_>) -> RoutingDecision {
        // Synthesise boundary entries for every block in every guard direction, as if
        // this node stored the complete global picture.
        let n = ctx.mesh.ndim();
        let mut synthetic = self.scratch.borrow_mut();
        synthetic.clear();
        for block in ctx.global_blocks {
            for guard in Direction::iter_all(n) {
                synthetic.push(BoundaryEntry {
                    block_id: block.id,
                    block: block.region.clone(),
                    guard,
                    arrival_offset: 0,
                });
            }
        }
        let enriched = RouteCtx {
            boundary_info: &synthetic,
            global_blocks: &[],
            ..*ctx
        };
        self.inner.decide(&enriched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::block::BlockSet;
    use lgfi_core::boundary::BoundaryMap;
    use lgfi_core::labeling::LabelingEngine;
    use lgfi_core::routing::route_static;
    use lgfi_topology::{coord, Coord, Mesh};

    fn outcome_with(
        router: &dyn Router,
        mesh: &Mesh,
        faults: &[Coord],
        s: &Coord,
        d: &Coord,
    ) -> lgfi_core::routing::ProbeOutcome {
        let mut eng = LabelingEngine::new(mesh.clone());
        eng.apply_faults(faults);
        let blocks = BlockSet::extract(mesh, eng.statuses());
        let boundary = BoundaryMap::construct(mesh, &blocks);
        route_static(
            mesh,
            eng.statuses(),
            blocks.blocks(),
            &boundary,
            router,
            mesh.id_of(s),
            mesh.id_of(d),
            50_000,
        )
    }

    #[test]
    fn delivers_minimally_without_faults() {
        let mesh = Mesh::cubic(7, 3);
        let out = outcome_with(
            &GlobalInfoRouter::new(),
            &mesh,
            &[],
            &coord![0, 0, 0],
            &coord![6, 6, 6],
        );
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
    }

    #[test]
    fn avoids_dangerous_areas_everywhere_not_only_on_boundaries() {
        // Destination directly above a wide block, source below and to the side.  The
        // global router is warned immediately (even away from boundary nodes) and
        // routes around; it must never need more steps than the local router.
        let mesh = Mesh::cubic(18, 2);
        let mut faults = Vec::new();
        for x in 5..=12 {
            faults.push(coord![x, 8]);
            faults.push(coord![x, 9]);
        }
        let s = coord![8, 1];
        let d = coord![9, 15];
        let global = outcome_with(&GlobalInfoRouter::new(), &mesh, &faults, &s, &d);
        let local = outcome_with(
            &super::super::local::LocalInfoRouter::new(),
            &mesh,
            &faults,
            &s,
            &d,
        );
        let lgfi = outcome_with(
            &lgfi_core::routing::LgfiRouter::new(),
            &mesh,
            &faults,
            &s,
            &d,
        );
        assert!(global.delivered() && local.delivered() && lgfi.delivered());
        assert!(global.steps <= local.steps);
        // The limited-global router sits between the two extremes (ties allowed).
        assert!(lgfi.steps >= global.steps);
        assert!(lgfi.steps <= local.steps);
    }

    #[test]
    fn works_with_multiple_blocks() {
        let mesh = Mesh::cubic(16, 2);
        let faults = vec![
            coord![4, 4],
            coord![5, 5],
            coord![4, 5],
            coord![5, 4],
            coord![10, 10],
            coord![11, 11],
            coord![10, 11],
            coord![11, 10],
        ];
        let out = outcome_with(
            &GlobalInfoRouter::new(),
            &mesh,
            &faults,
            &coord![0, 0],
            &coord![15, 15],
        );
        assert!(out.delivered());
        assert_eq!(GlobalInfoRouter::new().name(), "global-info");
    }
}
