//! Deterministic dimension-order (e-cube) routing.
//!
//! The classic fault-oblivious baseline: correct the lowest dimension first, then the
//! next, and so on.  It has no adaptivity whatsoever; if the next hop on the unique
//! dimension-order path is faulty or disabled, the routing fails.  It brackets the
//! comparison from below: any fault that happens to sit on the e-cube path kills the
//! connection, which is why fault-tolerant routing exists in the first place.

use lgfi_core::routing::{RouteCtx, Router, RoutingDecision};
use lgfi_core::status::NodeStatus;
use lgfi_topology::Direction;

/// Deterministic dimension-order routing (no fault tolerance).
#[derive(Debug, Clone, Default)]
pub struct DimensionOrderRouter;

impl DimensionOrderRouter {
    /// Creates the router.
    pub fn new() -> Self {
        DimensionOrderRouter
    }
}

impl Router for DimensionOrderRouter {
    fn name(&self) -> &'static str {
        "dimension-order"
    }

    fn decide(&self, ctx: &RouteCtx<'_>) -> RoutingDecision {
        for dim in 0..ctx.mesh.ndim() {
            let delta = ctx.dest[dim] - ctx.current[dim];
            if delta == 0 {
                continue;
            }
            let dir = Direction::new(dim, delta > 0);
            return match ctx.neighbor_status(dir) {
                Some(NodeStatus::Enabled) | Some(NodeStatus::Clean) => {
                    RoutingDecision::Forward(dir)
                }
                // The unique next hop is unusable: deterministic routing gives up.
                _ => RoutingDecision::Fail,
            };
        }
        // Already at the destination (the probe engine normally catches this first).
        RoutingDecision::Fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgfi_core::block::BlockSet;
    use lgfi_core::boundary::BoundaryMap;
    use lgfi_core::labeling::LabelingEngine;
    use lgfi_core::routing::{route_static, ProbeStatus};
    use lgfi_topology::{coord, Coord, Mesh};

    fn run(
        mesh: &Mesh,
        faults: &[Coord],
        s: &Coord,
        d: &Coord,
    ) -> lgfi_core::routing::ProbeOutcome {
        let mut eng = LabelingEngine::new(mesh.clone());
        eng.apply_faults(faults);
        let blocks = BlockSet::extract(mesh, eng.statuses());
        let boundary = BoundaryMap::construct(mesh, &blocks);
        route_static(
            mesh,
            eng.statuses(),
            blocks.blocks(),
            &boundary,
            &DimensionOrderRouter::new(),
            mesh.id_of(s),
            mesh.id_of(d),
            10_000,
        )
    }

    #[test]
    fn fault_free_paths_are_minimal_and_dimension_ordered() {
        let mesh = Mesh::cubic(8, 3);
        let out = run(&mesh, &[], &coord![1, 2, 3], &coord![6, 0, 5]);
        assert!(out.delivered());
        assert_eq!(out.detours(), Some(0));
        assert_eq!(out.steps, 5 + 2 + 2);
    }

    #[test]
    fn a_fault_on_the_ecube_path_fails_the_route() {
        let mesh = Mesh::cubic(8, 2);
        // The e-cube path from (0,3) to (7,3) goes straight along x at y=3.
        let out = run(&mesh, &[coord![4, 3]], &coord![0, 3], &coord![7, 3]);
        assert_eq!(out.status, ProbeStatus::Failed);
        // A fault elsewhere does not matter.
        let ok = run(&mesh, &[coord![4, 6]], &coord![0, 3], &coord![7, 3]);
        assert!(ok.delivered());
    }

    #[test]
    fn disabled_nodes_also_block_the_deterministic_path() {
        let mesh = Mesh::cubic(10, 2);
        // Faults at (4,2) and (5,3) disable (4,3) and (5,2); the x-first path at y = 3
        // hits the disabled node (4,3).
        let out = run(
            &mesh,
            &[coord![4, 2], coord![5, 3]],
            &coord![0, 3],
            &coord![9, 3],
        );
        assert_eq!(out.status, ProbeStatus::Failed);
    }
}
