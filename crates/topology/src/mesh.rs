//! The k-ary n-dimensional mesh shape.
//!
//! A [`Mesh`] stores only the per-dimension radices; it converts between dense node
//! ids and coordinates, enumerates neighbors, and answers the structural questions the
//! protocols need (is a node on the outermost surface of the mesh? what is the network
//! diameter? ...).  Section 2.1 of the paper defines the topology; the dynamic-fault
//! model of Section 5 additionally assumes that *no fault occurs on the outermost
//! surface of the mesh*, which is why [`Mesh::on_outermost_surface`] exists.

use crate::coord::Coord;
use crate::direction::Direction;
use crate::region::Region;

/// Dense node identifier: the row-major linearisation of the node's coordinate.
pub type NodeId = usize;

/// The shape of a k-ary n-dimensional mesh (radix may differ per dimension).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    dims: Vec<i32>,
    /// Row-major strides; `strides[i]` is the id increment of `+1` in dimension `i`.
    strides: Vec<usize>,
    node_count: usize,
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mesh{:?}", self.dims)
    }
}

impl Mesh {
    /// Creates a mesh with the given per-dimension radices.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any radix is < 1.
    pub fn new(dims: &[i32]) -> Self {
        assert!(!dims.is_empty(), "a mesh needs at least one dimension");
        assert!(
            dims.iter().all(|&k| k >= 1),
            "every dimension must have radix >= 1"
        );
        let n = dims.len();
        let mut strides = vec![0usize; n];
        let mut acc = 1usize;
        // Last dimension varies fastest (row-major).
        for d in (0..n).rev() {
            strides[d] = acc;
            acc = acc
                .checked_mul(dims[d] as usize)
                // audit:allow(panic): construction-time overflow is a caller error
                .expect("mesh too large for usize");
        }
        Mesh {
            dims: dims.to_vec(),
            strides,
            node_count: acc,
        }
    }

    /// Creates a k-ary n-D mesh (`k` nodes along each of the `n` dimensions).
    pub fn cubic(k: i32, n: usize) -> Self {
        Mesh::new(&vec![k; n])
    }

    /// Number of dimensions `n`.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension radices.
    pub fn dims(&self) -> &[i32] {
        &self.dims
    }

    /// Radix of dimension `d`.
    pub fn radix(&self, d: usize) -> i32 {
        self.dims[d]
    }

    /// Total number of nodes `N = k_1 * ... * k_n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The network diameter `(k_1 - 1) + ... + (k_n - 1)` (the paper's `(k-1)n` for the
    /// cubic case).
    pub fn diameter(&self) -> u32 {
        self.dims.iter().map(|&k| (k - 1) as u32).sum()
    }

    /// True if `c` lies inside the mesh.
    pub fn contains(&self, c: &Coord) -> bool {
        c.ndim() == self.ndim()
            && c.as_slice()
                .iter()
                .zip(self.dims.iter())
                .all(|(&x, &k)| x >= 0 && x < k)
    }

    /// The whole mesh as a [`Region`].
    pub fn full_region(&self) -> Region {
        Region::new(
            vec![0; self.ndim()],
            self.dims.iter().map(|&k| k - 1).collect(),
        )
    }

    /// Converts a coordinate to its dense node id.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the mesh.
    pub fn id_of(&self, c: &Coord) -> NodeId {
        assert!(self.contains(c), "coordinate {c:?} outside mesh {self:?}");
        c.as_slice()
            .iter()
            .zip(self.strides.iter())
            .map(|(&x, &s)| x as usize * s)
            .sum()
    }

    /// Converts a dense node id back to its coordinate.  Allocation-free for meshes
    /// of up to [`MAX_INLINE_DIMS`](crate::coord::MAX_INLINE_DIMS) dimensions.
    ///
    /// # Panics
    /// Panics if `id >= node_count()`.
    #[inline]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        assert!(id < self.node_count, "node id {id} out of range");
        let mut rest = id;
        let mut c = Coord::origin(self.ndim());
        for (d, &stride) in self.strides.iter().enumerate() {
            c[d] = (rest / stride) as i32;
            rest %= stride;
        }
        c
    }

    /// The position of node `id` along dimension `d`, computed arithmetically
    /// without materialising the full coordinate.
    #[inline]
    pub fn position(&self, id: NodeId, d: usize) -> i32 {
        ((id / self.strides[d]) % self.dims[d] as usize) as i32
    }

    /// The neighbor of `c` in direction `dir`, if it exists in the mesh.
    pub fn neighbor(&self, c: &Coord, dir: Direction) -> Option<Coord> {
        let next = c.step(dir);
        if self.contains(&next) {
            Some(next)
        } else {
            None
        }
    }

    /// The neighbor of node `id` in direction `dir`, if it exists.
    ///
    /// Pure stride arithmetic — no coordinate is materialised and nothing is
    /// allocated; this is the neighbor lookup of the routing hot path.
    #[inline]
    pub fn neighbor_id(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let stride = self.strides[dir.dim];
        let x = self.position(id, dir.dim);
        if dir.positive {
            if x + 1 < self.dims[dir.dim] {
                Some(id + stride)
            } else {
                None
            }
        } else if x > 0 {
            Some(id - stride)
        } else {
            None
        }
    }

    /// All (direction, neighbor) pairs of a coordinate.
    pub fn neighbors(&self, c: &Coord) -> Vec<(Direction, Coord)> {
        let mut out = Vec::with_capacity(2 * self.ndim());
        for dir in Direction::all(self.ndim()) {
            if let Some(nc) = self.neighbor(c, dir) {
                out.push((dir, nc));
            }
        }
        out
    }

    /// All (direction, neighbor id) pairs of a node id.
    ///
    /// Allocates the result vector; hot paths should iterate
    /// [`Direction::iter_all`] and call [`Mesh::neighbor_id`] per direction instead.
    pub fn neighbor_ids(&self, id: NodeId) -> Vec<(Direction, NodeId)> {
        Direction::iter_all(self.ndim())
            .filter_map(|dir| self.neighbor_id(id, dir).map(|nid| (dir, nid)))
            .collect()
    }

    /// Node degree (number of in-mesh neighbors) of a coordinate.
    pub fn degree(&self, c: &Coord) -> usize {
        Direction::all(self.ndim())
            .into_iter()
            .filter(|&d| self.neighbor(c, d).is_some())
            .count()
    }

    /// True if `c` lies on the outermost surface of the mesh (some coordinate is `0`
    /// or `k_i - 1`).
    ///
    /// The dynamic fault model (Section 5) assumes no fault occurs on the outermost
    /// surface, which together with the properties of \[14\] guarantees the mesh never
    /// disconnects.
    pub fn on_outermost_surface(&self, c: &Coord) -> bool {
        c.as_slice()
            .iter()
            .zip(self.dims.iter())
            .any(|(&x, &k)| x == 0 || x == k - 1)
    }

    /// The interior of the mesh (all nodes not on the outermost surface), as a region.
    /// Returns `None` if the mesh has no interior (some radix <= 2).
    pub fn interior_region(&self) -> Option<Region> {
        if self.dims.iter().any(|&k| k <= 2) {
            return None;
        }
        Some(Region::new(
            vec![1; self.ndim()],
            self.dims.iter().map(|&k| k - 2).collect(),
        ))
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.node_count).map(|id| self.coord_of(id))
    }

    /// Manhattan distance between two node ids, computed arithmetically without
    /// materialising coordinates.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (0..self.ndim())
            .map(|d| self.position(a, d).abs_diff(self.position(b, d)))
            .sum()
    }

    /// True if the ids are mesh neighbors (their Manhattan distance is exactly 1).
    #[inline]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.distance(a, b) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord;

    #[test]
    fn node_count_and_diameter_match_section_2_1() {
        // A k-ary n-D mesh has N = k^n nodes and diameter (k-1)n.
        let mesh = Mesh::cubic(5, 3);
        assert_eq!(mesh.node_count(), 125);
        assert_eq!(mesh.diameter(), 12);
        let mesh = Mesh::new(&[4, 6, 3, 2]);
        assert_eq!(mesh.node_count(), 4 * 6 * 3 * 2);
        assert_eq!(mesh.diameter(), 3 + 5 + 2 + 1);
    }

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh::new(&[3, 4, 5]);
        for id in mesh.node_ids() {
            let c = mesh.coord_of(id);
            assert!(mesh.contains(&c));
            assert_eq!(mesh.id_of(&c), id);
        }
    }

    #[test]
    fn interior_degree_is_2n() {
        let mesh = Mesh::cubic(5, 3);
        assert_eq!(mesh.degree(&coord![2, 2, 2]), 6);
        assert_eq!(mesh.degree(&coord![0, 2, 2]), 5);
        assert_eq!(mesh.degree(&coord![0, 0, 0]), 3);
    }

    #[test]
    fn neighbors_are_symmetric_and_unit_distance() {
        let mesh = Mesh::new(&[4, 3, 4]);
        for c in mesh.coords() {
            for (dir, nc) in mesh.neighbors(&c) {
                assert_eq!(c.manhattan(&nc), 1);
                assert_eq!(c.step(dir), nc);
                // symmetric
                assert!(mesh
                    .neighbors(&nc)
                    .into_iter()
                    .any(|(d2, back)| back == c && d2 == dir.opposite()));
            }
        }
    }

    #[test]
    fn neighbor_respects_mesh_boundary() {
        let mesh = Mesh::cubic(4, 2);
        assert_eq!(mesh.neighbor(&coord![0, 0], Direction::neg(0)), None);
        assert_eq!(mesh.neighbor(&coord![3, 3], Direction::pos(1)), None);
        assert_eq!(
            mesh.neighbor(&coord![3, 2], Direction::pos(1)),
            Some(coord![3, 3])
        );
    }

    #[test]
    fn outermost_surface_detection() {
        let mesh = Mesh::cubic(6, 3);
        assert!(mesh.on_outermost_surface(&coord![0, 3, 3]));
        assert!(mesh.on_outermost_surface(&coord![5, 3, 3]));
        assert!(mesh.on_outermost_surface(&coord![3, 3, 5]));
        assert!(!mesh.on_outermost_surface(&coord![3, 3, 3]));
        assert!(!mesh.on_outermost_surface(&coord![1, 4, 4]));
    }

    #[test]
    fn interior_region_excludes_outermost_surface() {
        let mesh = Mesh::cubic(6, 3);
        let interior = mesh.interior_region().unwrap();
        for c in mesh.coords() {
            assert_eq!(interior.contains(&c), !mesh.on_outermost_surface(&c));
        }
        assert!(Mesh::cubic(2, 2).interior_region().is_none());
    }

    #[test]
    fn distance_via_ids() {
        let mesh = Mesh::cubic(8, 2);
        let a = mesh.id_of(&coord![1, 1]);
        let b = mesh.id_of(&coord![6, 3]);
        assert_eq!(mesh.distance(a, b), 7);
        assert!(!mesh.are_neighbors(a, b));
        let c = mesh.id_of(&coord![1, 2]);
        assert!(mesh.are_neighbors(a, c));
    }

    #[test]
    fn neighbor_id_matches_coordinate_neighbor() {
        let mesh = Mesh::new(&[3, 5, 4]);
        for id in mesh.node_ids() {
            for (dir, nid) in mesh.neighbor_ids(id) {
                assert_eq!(mesh.neighbor_id(id, dir), Some(nid));
                assert_eq!(mesh.coord_of(id).step(dir), mesh.coord_of(nid));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn id_of_out_of_range_panics() {
        Mesh::cubic(3, 2).id_of(&coord![3, 0]);
    }

    #[test]
    fn full_region_covers_all_nodes() {
        let mesh = Mesh::new(&[3, 4]);
        let r = mesh.full_region();
        assert_eq!(r.volume(), mesh.node_count() as u64);
    }
}
