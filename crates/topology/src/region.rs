//! Inclusive n-dimensional boxes and the "frame" geometry of faulty blocks.
//!
//! A faulty block in the paper is a box-shaped set of faulty/disabled nodes; its
//! *adjacent surfaces*, *edges* and *corners* (Definitions 2 and 3) live one unit
//! outside that box.  [`Region`] represents the box itself (inclusive bounds), and
//! [`Region::frame_level`] classifies any coordinate with respect to the expanded
//! frame:
//!
//! * `Inside` — within the box,
//! * `Frame(m)` — exactly `m` coordinates sit one unit outside the box and all the
//!   others are within the box's extent.  `Frame(1)` nodes are the *adjacent nodes*
//!   (they have a neighbor in the block), `Frame(m)` nodes are the paper's `m`-level
//!   corners (equivalently `(m+1)`-level edge nodes), and `Frame(n)` nodes in an n-D
//!   mesh are the `n`-level corners,
//! * `Outside` — anything else.

use crate::coord::Coord;
use crate::direction::Direction;
use crate::mesh::Mesh;

/// Classification of a coordinate with respect to a region's expanded frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FrameLevel {
    /// The coordinate lies inside the region.
    Inside,
    /// Exactly `m` coordinates are one unit outside the region (at `lo-1` or `hi+1`)
    /// and every other coordinate is within the region's extent.  `Frame(1)` =
    /// adjacent node, `Frame(m)` = m-level corner of the block.
    Frame(usize),
    /// Neither inside nor on the expanded frame.
    Outside,
}

/// An inclusive n-dimensional box `[lo_1:hi_1, ..., lo_n:hi_n]`.
///
/// The bounds are stored as [`Coord`]s, so for meshes of up to
/// [`MAX_INLINE_DIMS`](crate::coord::MAX_INLINE_DIMS) dimensions cloning, expanding
/// and clipping a region never heap-allocates.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Coord,
    hi: Coord,
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for d in 0..self.ndim() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

impl Region {
    /// Creates a region from inclusive per-dimension bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths, are empty, or `lo > hi` anywhere.
    pub fn new(lo: Vec<i32>, hi: Vec<i32>) -> Self {
        Region::from_bounds(Coord::new(lo), Coord::new(hi))
    }

    /// Creates a region from inclusive per-dimension bounds given as coordinates —
    /// the allocation-free constructor the routing hot path uses.
    ///
    /// # Panics
    /// Panics if the bounds have different dimensionality, are empty, or `lo > hi`
    /// anywhere.
    #[inline]
    pub fn from_bounds(lo: Coord, hi: Coord) -> Self {
        assert_eq!(lo.ndim(), hi.ndim(), "bound dimensionality mismatch");
        assert!(lo.ndim() > 0, "a region needs at least one dimension");
        assert!(
            lo.as_slice().iter().zip(hi.as_slice()).all(|(a, b)| a <= b),
            "lo must be <= hi in every dimension: {lo:?} vs {hi:?}"
        );
        Region { lo, hi }
    }

    /// The degenerate region containing a single coordinate.
    pub fn point(c: &Coord) -> Self {
        Region::from_bounds(c.clone(), c.clone())
    }

    /// The smallest region containing both coordinates (the minimal-path bounding box
    /// between a source and a destination).
    pub fn bounding(a: &Coord, b: &Coord) -> Self {
        assert_eq!(a.ndim(), b.ndim(), "dimension mismatch");
        let mut lo = a.clone();
        let mut hi = a.clone();
        for d in 0..a.ndim() {
            lo[d] = a[d].min(b[d]);
            hi[d] = a[d].max(b[d]);
        }
        Region::from_bounds(lo, hi)
    }

    /// The smallest region containing all the given coordinates.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding_all<'a, I: IntoIterator<Item = &'a Coord>>(coords: I) -> Option<Self> {
        let mut it = coords.into_iter();
        let first = it.next()?;
        let mut r = Region::point(first);
        for c in it {
            r = r.union_point(c);
        }
        Some(r)
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.lo.ndim()
    }

    /// Inclusive lower bounds.
    #[inline]
    pub fn lo(&self) -> &[i32] {
        self.lo.as_slice()
    }

    /// Inclusive upper bounds.
    #[inline]
    pub fn hi(&self) -> &[i32] {
        self.hi.as_slice()
    }

    /// Extent (`hi - lo + 1`) along dimension `d`.
    pub fn len(&self, d: usize) -> i32 {
        self.hi[d] - self.lo[d] + 1
    }

    /// The longest edge length of the region, the paper's `e_max` contribution of a
    /// single block.
    pub fn max_edge(&self) -> i32 {
        (0..self.ndim()).map(|d| self.len(d)).max().unwrap_or(0)
    }

    /// Number of coordinates contained in the region.
    pub fn volume(&self) -> u64 {
        (0..self.ndim()).map(|d| self.len(d) as u64).product()
    }

    /// True if the coordinate lies inside the region.
    #[inline]
    pub fn contains(&self, c: &Coord) -> bool {
        c.ndim() == self.ndim()
            && c.as_slice()
                .iter()
                .enumerate()
                .all(|(d, &x)| x >= self.lo[d] && x <= self.hi[d])
    }

    /// True if the regions share at least one coordinate.
    pub fn intersects(&self, other: &Region) -> bool {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        (0..self.ndim()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The intersection of the two regions, if non-empty.
    pub fn intersection(&self, other: &Region) -> Option<Region> {
        if !self.intersects(other) {
            return None;
        }
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        for d in 0..self.ndim() {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
        }
        Some(Region::from_bounds(lo, hi))
    }

    /// The smallest region containing both regions.
    pub fn union(&self, other: &Region) -> Region {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        for d in 0..self.ndim() {
            lo[d] = self.lo[d].min(other.lo[d]);
            hi[d] = self.hi[d].max(other.hi[d]);
        }
        Region::from_bounds(lo, hi)
    }

    /// The smallest region containing this region and the coordinate.
    pub fn union_point(&self, c: &Coord) -> Region {
        assert_eq!(self.ndim(), c.ndim(), "dimension mismatch");
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        for d in 0..self.ndim() {
            lo[d] = self.lo[d].min(c[d]);
            hi[d] = self.hi[d].max(c[d]);
        }
        Region::from_bounds(lo, hi)
    }

    /// The region grown by `by` units in every direction (allocation-free up to
    /// the inline coordinate limit).
    pub fn expand(&self, by: i32) -> Region {
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        for d in 0..self.ndim() {
            lo[d] -= by;
            hi[d] += by;
        }
        Region::from_bounds(lo, hi)
    }

    /// The region clipped to another region (typically the mesh), if the clip is
    /// non-empty.
    pub fn clip(&self, to: &Region) -> Option<Region> {
        self.intersection(to)
    }

    /// True if the other region is entirely contained in this one.
    pub fn contains_region(&self, other: &Region) -> bool {
        (0..self.ndim()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// True if two regions touch or overlap (their Chebyshev distance is <= 1), which
    /// is the condition under which two faulty blocks would *not* be disjoint in the
    /// sense used by the paper (a node adjacent to both belongs to a merged block
    /// after labeling).
    pub fn adjacent_or_overlapping(&self, other: &Region) -> bool {
        (0..self.ndim()).all(|d| self.lo[d] - 1 <= other.hi[d] && other.lo[d] - 1 <= self.hi[d])
    }

    /// Classifies a coordinate with respect to the expanded frame of this region; see
    /// the module documentation.
    pub fn frame_level(&self, c: &Coord) -> FrameLevel {
        if c.ndim() != self.ndim() {
            return FrameLevel::Outside;
        }
        let mut outside_by_one = 0usize;
        for d in 0..self.ndim() {
            let x = c[d];
            if x >= self.lo[d] && x <= self.hi[d] {
                continue;
            } else if x == self.lo[d] - 1 || x == self.hi[d] + 1 {
                outside_by_one += 1;
            } else {
                return FrameLevel::Outside;
            }
        }
        if outside_by_one == 0 {
            FrameLevel::Inside
        } else {
            FrameLevel::Frame(outside_by_one)
        }
    }

    /// The adjacent surface of the region in direction `dir` (Definition 3): the slab
    /// of coordinates one unit outside the region on that side, spanning the region's
    /// extent in every other dimension.
    pub fn adjacent_surface(&self, dir: Direction) -> Region {
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        if dir.positive {
            lo[dir.dim] = self.hi[dir.dim] + 1;
            hi[dir.dim] = self.hi[dir.dim] + 1;
        } else {
            lo[dir.dim] = self.lo[dir.dim] - 1;
            hi[dir.dim] = self.lo[dir.dim] - 1;
        }
        Region::from_bounds(lo, hi)
    }

    /// The `2^n` corner coordinates of the expanded frame (the paper's n-level
    /// corners), i.e. every coordinate one unit outside the region in *every*
    /// dimension.
    pub fn frame_corners(&self) -> Vec<Coord> {
        let n = self.ndim();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u32..(1u32 << n) {
            let mut c = Coord::origin(n);
            for d in 0..n {
                c[d] = if mask & (1 << d) != 0 {
                    self.hi[d] + 1
                } else {
                    self.lo[d] - 1
                };
            }
            out.push(c);
        }
        out
    }

    /// The coordinates of the expanded frame at exactly `level` (all `m`-level corners
    /// for `m = level`), restricted to `mesh`.
    ///
    /// `frame_nodes(mesh, 1)` are the adjacent nodes, `frame_nodes(mesh, n)` the
    /// n-level corners.
    pub fn frame_nodes(&self, mesh: &Mesh, level: usize) -> Vec<Coord> {
        assert!(level >= 1 && level <= self.ndim());
        let mut out = Vec::new();
        for c in self.expand(1).iter_coords() {
            if mesh.contains(&c) && self.frame_level(&c) == FrameLevel::Frame(level) {
                out.push(c);
            }
        }
        out
    }

    /// The semi-infinite *shadow prism* of the region behind its surface in direction
    /// `away` (clipped to `mesh`): the set of nodes whose coordinates lie within the
    /// region's extent in every dimension except `away.dim`, and beyond the region in
    /// the `away` direction.
    ///
    /// This is the paper's *dangerous area*: a message inside the shadow prism on the
    /// `-a` side whose destination lies in the shadow prism on the `+a` side has no
    /// minimal path (Section 2.2).  Returns `None` if the prism is empty (the region
    /// touches the mesh boundary on that side).
    pub fn shadow_prism(&self, mesh: &Mesh, away: Direction) -> Option<Region> {
        let full = mesh.full_region();
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        if away.positive {
            lo[away.dim] = self.hi[away.dim] + 1;
            hi[away.dim] = full.hi[away.dim];
        } else {
            lo[away.dim] = full.lo[away.dim];
            hi[away.dim] = self.lo[away.dim] - 1;
        }
        if lo[away.dim] > hi[away.dim] {
            return None;
        }
        Region::from_bounds(lo, hi).clip(&full)
    }

    /// Iterates over every coordinate in the region in row-major order.
    pub fn iter_coords(&self) -> RegionIter {
        RegionIter {
            next: Some(self.lo.clone()),
            region: self.clone(),
        }
    }
}

/// Iterator over the coordinates of a [`Region`] in row-major order.
pub struct RegionIter {
    region: Region,
    next: Option<Coord>,
}

impl Iterator for RegionIter {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let current = self.next.take()?;
        // Advance like an odometer with the last dimension varying fastest.
        let mut succ = current.clone();
        let n = self.region.ndim();
        let mut d = n;
        loop {
            if d == 0 {
                // Wrapped past the first dimension: iteration is finished.
                self.next = None;
                break;
            }
            d -= 1;
            if succ[d] < self.region.hi[d] {
                succ[d] += 1;
                for reset in d + 1..n {
                    succ[reset] = self.region.lo[reset];
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord;

    /// The block of Figure 1: faults (3,5,4), (4,5,4), (5,5,3), (3,6,3) produce the
    /// block [3:5, 5:6, 3:4].
    fn figure1_block() -> Region {
        Region::new(vec![3, 5, 3], vec![5, 6, 4])
    }

    #[test]
    fn volume_and_lengths() {
        let r = figure1_block();
        assert_eq!(r.len(0), 3);
        assert_eq!(r.len(1), 2);
        assert_eq!(r.len(2), 2);
        assert_eq!(r.volume(), 12);
        assert_eq!(r.max_edge(), 3);
    }

    #[test]
    fn bounding_box_of_fault_set_matches_figure_1() {
        let faults = [
            coord![3, 5, 4],
            coord![4, 5, 4],
            coord![5, 5, 3],
            coord![3, 6, 3],
        ];
        let bb = Region::bounding_all(faults.iter()).unwrap();
        assert_eq!(bb, figure1_block());
    }

    #[test]
    fn contains_and_intersection() {
        let r = figure1_block();
        assert!(r.contains(&coord![4, 5, 3]));
        assert!(!r.contains(&coord![2, 5, 3]));
        let other = Region::new(vec![5, 6, 4], vec![8, 8, 8]);
        assert!(r.intersects(&other));
        assert_eq!(
            r.intersection(&other).unwrap(),
            Region::new(vec![5, 6, 4], vec![5, 6, 4])
        );
        let disjoint = Region::new(vec![7, 0, 0], vec![8, 1, 1]);
        assert!(!r.intersects(&disjoint));
        assert!(r.intersection(&disjoint).is_none());
    }

    #[test]
    fn union_and_union_point() {
        let r = Region::new(vec![1, 1], vec![2, 2]);
        let s = Region::new(vec![4, 0], vec![5, 1]);
        assert_eq!(r.union(&s), Region::new(vec![1, 0], vec![5, 2]));
        assert_eq!(
            r.union_point(&coord![0, 7]),
            Region::new(vec![0, 1], vec![2, 7])
        );
    }

    #[test]
    fn expand_and_clip() {
        let mesh = Mesh::cubic(8, 3);
        let r = figure1_block();
        let e = r.expand(1);
        assert_eq!(e, Region::new(vec![2, 4, 2], vec![6, 7, 5]));
        let clipped = e.clip(&mesh.full_region()).unwrap();
        assert_eq!(clipped, e);
        let near_edge = Region::new(vec![0, 0, 0], vec![1, 1, 1]).expand(1);
        assert_eq!(
            near_edge.clip(&mesh.full_region()).unwrap(),
            Region::new(vec![0, 0, 0], vec![2, 2, 2])
        );
    }

    #[test]
    fn frame_level_classifies_paper_figure_2() {
        // Block [3:5, 5:6, 3:4]; the paper's corner representation uses
        // xmin=2, xmax=6, ymin=4, ymax=7, zmin=2, zmax=5 (one unit outside).
        let r = figure1_block();
        // (6,4,5) is a 3-level corner.
        assert_eq!(r.frame_level(&coord![6, 4, 5]), FrameLevel::Frame(3));
        // Its three 3-level edge neighbors (= 2-level corners).
        assert_eq!(r.frame_level(&coord![5, 4, 5]), FrameLevel::Frame(2));
        assert_eq!(r.frame_level(&coord![6, 5, 5]), FrameLevel::Frame(2));
        assert_eq!(r.frame_level(&coord![6, 4, 4]), FrameLevel::Frame(2));
        // (5,4,5) has neighbors (5,5,5) and (5,4,4) adjacent to the block.
        assert_eq!(r.frame_level(&coord![5, 5, 5]), FrameLevel::Frame(1));
        assert_eq!(r.frame_level(&coord![5, 4, 4]), FrameLevel::Frame(1));
        // Inside and outside.
        assert_eq!(r.frame_level(&coord![4, 5, 3]), FrameLevel::Inside);
        assert_eq!(r.frame_level(&coord![7, 4, 5]), FrameLevel::Outside);
        assert_eq!(r.frame_level(&coord![0, 0, 0]), FrameLevel::Outside);
    }

    #[test]
    fn frame_corners_are_the_eight_paper_corners() {
        let r = figure1_block();
        let corners = r.frame_corners();
        assert_eq!(corners.len(), 8);
        for expected in [
            coord![2, 4, 2],
            coord![6, 4, 2],
            coord![6, 7, 2],
            coord![2, 7, 2],
            coord![2, 4, 5],
            coord![6, 4, 5],
            coord![6, 7, 5],
            coord![2, 7, 5],
        ] {
            assert!(corners.contains(&expected), "missing corner {expected:?}");
        }
    }

    #[test]
    fn frame_node_counts_in_3d() {
        let mesh = Mesh::cubic(10, 3);
        let r = figure1_block();
        // Adjacent nodes: the 6 faces of a 3x2x2 block.
        let adj = r.frame_nodes(&mesh, 1);
        assert_eq!(adj.len() as u64, 2 * (2 * 2 + 3 * 2 + 3 * 2));
        // Edge nodes (2-level corners): 12 edges of lengths 3,3,3,3,2,2,2,2,2,2,2,2.
        let edges = r.frame_nodes(&mesh, 2);
        assert_eq!(edges.len() as i32, 4 * (3 + 2 + 2));
        // 3-level corners.
        let corners = r.frame_nodes(&mesh, 3);
        assert_eq!(corners.len(), 8);
    }

    #[test]
    fn adjacent_surface_matches_definition_3() {
        let r = figure1_block();
        let n = 3;
        // S1 is the adjacent surface on the south (negative Y) side.
        let s1 = r.adjacent_surface(Direction::from_surface_index(1, n));
        assert_eq!(s1, Region::new(vec![3, 4, 3], vec![5, 4, 4]));
        // S4 is its opposite on the north side.
        let s4 = r.adjacent_surface(Direction::from_surface_index(4, n));
        assert_eq!(s4, Region::new(vec![3, 7, 3], vec![5, 7, 4]));
        // Surfaces are one unit away from the block and do not intersect it.
        for dir in Direction::all(n) {
            assert!(!r.intersects(&r.adjacent_surface(dir)));
        }
    }

    #[test]
    fn shadow_prism_is_the_dangerous_area() {
        let mesh = Mesh::cubic(10, 3);
        let r = figure1_block();
        // Shadow on the -Y side (below S1): y in [0, 4], x in [3,5], z in [3,4].
        let south = r.shadow_prism(&mesh, Direction::neg(1)).unwrap();
        assert_eq!(south, Region::new(vec![3, 0, 3], vec![5, 4, 4]));
        // Shadow on the +Y side.
        let north = r.shadow_prism(&mesh, Direction::pos(1)).unwrap();
        assert_eq!(north, Region::new(vec![3, 7, 3], vec![5, 9, 4]));
        // A block touching the mesh face has no shadow on that side.
        let flush = Region::new(vec![0, 2, 2], vec![1, 3, 3]);
        assert!(flush.shadow_prism(&mesh, Direction::neg(0)).is_none());
    }

    #[test]
    fn iter_coords_visits_volume_exactly_once() {
        let r = Region::new(vec![1, 2, 3], vec![2, 4, 4]);
        let coords: Vec<Coord> = r.iter_coords().collect();
        assert_eq!(coords.len() as u64, r.volume());
        let mut sorted = coords.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), coords.len());
        assert!(coords.iter().all(|c| r.contains(c)));
        assert_eq!(coords.first().unwrap(), &coord![1, 2, 3]);
        assert_eq!(coords.last().unwrap(), &coord![2, 4, 4]);
    }

    #[test]
    fn adjacency_of_regions() {
        let a = Region::new(vec![0, 0], vec![1, 1]);
        let b = Region::new(vec![2, 0], vec![3, 1]);
        let c = Region::new(vec![3, 2], vec![4, 4]);
        let far = Region::new(vec![5, 5], vec![6, 6]);
        assert!(a.adjacent_or_overlapping(&b));
        assert!(!a.adjacent_or_overlapping(&far));
        assert!(b.adjacent_or_overlapping(&c));
        assert!(!a.adjacent_or_overlapping(&c));
    }

    #[test]
    fn point_and_bounding() {
        let p = Region::point(&coord![2, 3]);
        assert_eq!(p.volume(), 1);
        let bb = Region::bounding(&coord![5, 1], &coord![2, 4]);
        assert_eq!(bb, Region::new(vec![2, 1], vec![5, 4]));
        assert!(Region::bounding_all(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_region_check() {
        let big = Region::new(vec![0, 0], vec![9, 9]);
        let small = Region::new(vec![2, 3], vec![4, 5]);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn invalid_bounds_panic() {
        Region::new(vec![3, 0], vec![2, 5]);
    }
}
