//! n-dimensional node addresses.
//!
//! A [`Coord`] is the address `(u_1, ..., u_n)` of a node in a k-ary n-D mesh.  The
//! paper measures all distances in the Manhattan (L1) metric: the distance between
//! nodes `u` and `v` is `|u_1 - v_1| + ... + |u_n - v_n|` (Section 2.1).
//!
//! Coordinates are the most frequently built value in the routing hot path (one per
//! hop for the current node, plus one per candidate direction), so the positions are
//! stored **inline** in a fixed-capacity array for meshes of up to
//! [`MAX_INLINE_DIMS`] dimensions: constructing, cloning and stepping a coordinate
//! never touches the heap.  Beyond that limit a heap vector keeps correctness for
//! arbitrary dimensionality.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::direction::Direction;

/// The number of dimensions a [`Coord`] stores inline without heap allocation.
///
/// Matches `lgfi_sim::MAX_STACK_NEIGHBORS / 2`: the same 8-dimension threshold the
/// round data plane uses for its stack-allocated neighbor views.
pub const MAX_INLINE_DIMS: usize = 8;

/// The storage of a [`Coord`]: inline for up to [`MAX_INLINE_DIMS`] dimensions,
/// heap-backed beyond.  Construction always picks the inline variant when the
/// dimensionality permits, so the representation is canonical and comparisons can
/// delegate to the position slice.
#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        vals: [i32; MAX_INLINE_DIMS],
    },
    Heap(Vec<i32>),
}

/// An n-dimensional mesh coordinate.
///
/// Coordinates are stored as `i32` so that the "expanded frame" of a faulty block
/// (one unit outside the block, possibly at `-1` next to the mesh boundary in
/// intermediate computations) can be represented without wrap-around.
#[derive(Clone)]
pub struct Coord(Repr);

impl Coord {
    /// Creates a coordinate from per-dimension positions (a `Vec`, array, or
    /// slice — the values are copied into the inline representation, so
    /// nothing is consumed).
    pub fn new(values: impl AsRef<[i32]>) -> Self {
        Coord::from_slice(values.as_ref())
    }

    /// Creates the all-zero coordinate (the origin) in `n` dimensions.
    #[inline]
    pub fn origin(n: usize) -> Self {
        if n <= MAX_INLINE_DIMS {
            Coord(Repr::Inline {
                len: n as u8,
                vals: [0; MAX_INLINE_DIMS],
            })
        } else {
            Coord(Repr::Heap(vec![0; n]))
        }
    }

    /// Creates a coordinate from a slice.
    #[inline]
    pub fn from_slice(values: &[i32]) -> Self {
        if values.len() <= MAX_INLINE_DIMS {
            let mut vals = [0; MAX_INLINE_DIMS];
            vals[..values.len()].copy_from_slice(values);
            Coord(Repr::Inline {
                len: values.len() as u8,
                vals,
            })
        } else {
            Coord(Repr::Heap(values.to_vec()))
        }
    }

    /// The number of dimensions of this coordinate.
    #[inline]
    pub fn ndim(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Returns the underlying positions as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[i32] {
        match &self.0 {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The underlying positions as a mutable slice.
    #[inline]
    fn as_mut_slice(&mut self) -> &mut [i32] {
        match &mut self.0 {
            Repr::Inline { len, vals } => &mut vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Manhattan (L1) distance to another coordinate.
    ///
    /// This is the `D(u, v)` of Section 2.1 of the paper.
    ///
    /// # Panics
    /// Panics if the two coordinates have different dimensionality.
    #[inline]
    pub fn manhattan(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a.abs_diff(*b))
            .sum()
    }

    /// Chebyshev (L∞) distance to another coordinate.
    #[inline]
    pub fn chebyshev(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a.abs_diff(*b))
            .max()
            .unwrap_or(0)
    }

    /// Returns the coordinate obtained by taking one hop in `dir`.
    ///
    /// The result is *not* checked against any mesh bounds; use
    /// [`Mesh::neighbor`](crate::mesh::Mesh::neighbor) for a bounds-checked hop.
    /// Allocation-free for meshes of up to [`MAX_INLINE_DIMS`] dimensions.
    #[inline]
    pub fn step(&self, dir: Direction) -> Coord {
        let mut c = self.clone();
        c[dir.dim] += dir.delta();
        c
    }

    /// True if the two coordinates differ in exactly one dimension by exactly one,
    /// i.e. they are connected by a mesh link.
    #[inline]
    pub fn is_neighbor_of(&self, other: &Coord) -> bool {
        if self.ndim() != other.ndim() {
            return false;
        }
        let mut diff_dims = 0usize;
        let mut unit = true;
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            if a != b {
                diff_dims += 1;
                if a.abs_diff(*b) != 1 {
                    unit = false;
                }
            }
        }
        diff_dims == 1 && unit
    }

    /// If `other` is a neighbor of `self`, returns the direction of the hop
    /// `self -> other`.
    #[inline]
    pub fn direction_to(&self, other: &Coord) -> Option<Direction> {
        if !self.is_neighbor_of(other) {
            return None;
        }
        for (dim, (a, b)) in self.as_slice().iter().zip(other.as_slice()).enumerate() {
            if a != b {
                return Some(Direction::new(dim, b > a));
            }
        }
        None
    }

    /// The dimensions in which `self` and `other` differ, as an allocation-free
    /// iterator.
    pub fn differing_dims<'a>(&'a self, other: &'a Coord) -> impl Iterator<Item = usize> + 'a {
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .enumerate()
            .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
    }

    /// Per-dimension offset `other - self`, as an allocation-free iterator.
    pub fn offset_to<'a>(&'a self, other: &'a Coord) -> impl Iterator<Item = i32> + 'a {
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| b - a)
    }
}

impl PartialEq for Coord {
    #[inline]
    fn eq(&self, other: &Coord) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Coord {}

impl std::hash::Hash for Coord {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Coord {
    #[inline]
    fn partial_cmp(&self, other: &Coord) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Coord {
    #[inline]
    fn cmp(&self, other: &Coord) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Index<usize> for Coord {
    type Output = i32;
    #[inline]
    fn index(&self, index: usize) -> &i32 {
        &self.as_slice()[index]
    }
}

impl IndexMut<usize> for Coord {
    #[inline]
    fn index_mut(&mut self, index: usize) -> &mut i32 {
        &mut self.as_mut_slice()[index]
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<i32>> for Coord {
    fn from(v: Vec<i32>) -> Self {
        Coord::new(v)
    }
}

impl From<&[i32]> for Coord {
    fn from(v: &[i32]) -> Self {
        Coord::from_slice(v)
    }
}

/// Convenience macro for writing coordinates in tests and examples: `coord![3, 5, 4]`.
#[macro_export]
macro_rules! coord {
    ($($x:expr),* $(,)?) => {
        $crate::coord::Coord::from_slice(&[$($x as i32),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_matches_paper_definition() {
        let u = coord![1, 2, 3];
        let v = coord![4, 0, 3];
        assert_eq!(u.manhattan(&v), 3 + 2);
        assert_eq!(v.manhattan(&u), 5);
        assert_eq!(u.manhattan(&u), 0);
    }

    #[test]
    fn chebyshev_distance() {
        let u = coord![1, 2, 3];
        let v = coord![4, 0, 3];
        assert_eq!(u.chebyshev(&v), 3);
    }

    #[test]
    fn neighbor_detection_requires_unit_difference_in_one_dimension() {
        let u = coord![2, 2, 2];
        assert!(u.is_neighbor_of(&coord![3, 2, 2]));
        assert!(u.is_neighbor_of(&coord![2, 1, 2]));
        assert!(!u.is_neighbor_of(&coord![3, 3, 2]));
        assert!(!u.is_neighbor_of(&coord![4, 2, 2]));
        assert!(!u.is_neighbor_of(&coord![2, 2, 2]));
    }

    #[test]
    fn direction_to_neighbor() {
        let u = coord![2, 2];
        assert_eq!(u.direction_to(&coord![3, 2]), Some(Direction::new(0, true)));
        assert_eq!(
            u.direction_to(&coord![2, 1]),
            Some(Direction::new(1, false))
        );
        assert_eq!(u.direction_to(&coord![3, 3]), None);
    }

    #[test]
    fn step_moves_one_hop() {
        let u = coord![2, 2, 2];
        assert_eq!(u.step(Direction::new(2, true)), coord![2, 2, 3]);
        assert_eq!(u.step(Direction::new(0, false)), coord![1, 2, 2]);
    }

    #[test]
    fn differing_dims_and_offset() {
        let u = coord![0, 5, 2];
        let v = coord![3, 5, 0];
        assert_eq!(u.differing_dims(&v).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(u.offset_to(&v).collect::<Vec<_>>(), vec![3, 0, -2]);
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(format!("{}", coord![6, 4, 5]), "(6,4,5)");
    }

    #[test]
    fn heap_fallback_above_the_inline_limit_behaves_identically() {
        // 9 and 12 dimensions exceed MAX_INLINE_DIMS and fall back to the heap; every
        // operation must behave exactly as for inline coordinates.
        let n = MAX_INLINE_DIMS + 1;
        let u = Coord::origin(n);
        let mut v = Coord::origin(n);
        v[n - 1] = 3;
        v[0] = -1;
        assert_eq!(u.ndim(), n);
        assert_eq!(u.manhattan(&v), 4);
        assert_eq!(u.chebyshev(&v), 3);
        assert_eq!(u.step(Direction::pos(n - 1))[n - 1], 1);
        assert!(u.step(Direction::pos(n - 1)).is_neighbor_of(&u));
        assert_eq!(u.differing_dims(&v).collect::<Vec<_>>(), vec![0, n - 1]);
        // Ordering and equality are slice-based across representations.
        let w = Coord::from_slice(v.as_slice());
        assert_eq!(v, w);
        assert!(u < v || v < u);
    }

    #[test]
    fn inline_and_heap_hash_and_compare_by_positions() {
        use std::collections::HashSet;
        let a = coord![1, 2, 3];
        let b = Coord::from_slice(&[1, 2, 3]);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(coord![1, 2] < coord![1, 3]);
        assert!(coord![1, 2] < coord![1, 2, 0]);
    }
}
