//! n-dimensional node addresses.
//!
//! A [`Coord`] is the address `(u_1, ..., u_n)` of a node in a k-ary n-D mesh.  The
//! paper measures all distances in the Manhattan (L1) metric: the distance between
//! nodes `u` and `v` is `|u_1 - v_1| + ... + |u_n - v_n|` (Section 2.1).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::direction::Direction;

/// An n-dimensional mesh coordinate.
///
/// Coordinates are stored as `i32` so that the "expanded frame" of a faulty block
/// (one unit outside the block, possibly at `-1` next to the mesh boundary in
/// intermediate computations) can be represented without wrap-around.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord(pub Vec<i32>);

impl Coord {
    /// Creates a coordinate from a vector of per-dimension positions.
    pub fn new(values: Vec<i32>) -> Self {
        Coord(values)
    }

    /// Creates the all-zero coordinate (the origin) in `n` dimensions.
    pub fn origin(n: usize) -> Self {
        Coord(vec![0; n])
    }

    /// Creates a coordinate from a slice.
    pub fn from_slice(values: &[i32]) -> Self {
        Coord(values.to_vec())
    }

    /// The number of dimensions of this coordinate.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Returns the underlying positions as a slice.
    pub fn as_slice(&self) -> &[i32] {
        &self.0
    }

    /// Manhattan (L1) distance to another coordinate.
    ///
    /// This is the `D(u, v)` of Section 2.1 of the paper.
    ///
    /// # Panics
    /// Panics if the two coordinates have different dimensionality.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| a.abs_diff(*b))
            .sum()
    }

    /// Chebyshev (L∞) distance to another coordinate.
    pub fn chebyshev(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndim(), other.ndim(), "dimension mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| a.abs_diff(*b))
            .max()
            .unwrap_or(0)
    }

    /// Returns the coordinate obtained by taking one hop in `dir`.
    ///
    /// The result is *not* checked against any mesh bounds; use
    /// [`Mesh::neighbor`](crate::mesh::Mesh::neighbor) for a bounds-checked hop.
    pub fn step(&self, dir: Direction) -> Coord {
        let mut c = self.clone();
        c.0[dir.dim] += dir.delta();
        c
    }

    /// True if the two coordinates differ in exactly one dimension by exactly one,
    /// i.e. they are connected by a mesh link.
    pub fn is_neighbor_of(&self, other: &Coord) -> bool {
        if self.ndim() != other.ndim() {
            return false;
        }
        let mut diff_dims = 0usize;
        let mut unit = true;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            if a != b {
                diff_dims += 1;
                if a.abs_diff(*b) != 1 {
                    unit = false;
                }
            }
        }
        diff_dims == 1 && unit
    }

    /// If `other` is a neighbor of `self`, returns the direction of the hop
    /// `self -> other`.
    pub fn direction_to(&self, other: &Coord) -> Option<Direction> {
        if !self.is_neighbor_of(other) {
            return None;
        }
        for (dim, (a, b)) in self.0.iter().zip(other.0.iter()).enumerate() {
            if a != b {
                return Some(Direction::new(dim, b > a));
            }
        }
        None
    }

    /// The set of dimensions in which `self` and `other` differ.
    pub fn differing_dims(&self, other: &Coord) -> Vec<usize> {
        self.0
            .iter()
            .zip(other.0.iter())
            .enumerate()
            .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
            .collect()
    }

    /// Per-dimension offset `other - self`.
    pub fn offset_to(&self, other: &Coord) -> Vec<i32> {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| b - a)
            .collect()
    }
}

impl Index<usize> for Coord {
    type Output = i32;
    fn index(&self, index: usize) -> &i32 {
        &self.0[index]
    }
}

impl IndexMut<usize> for Coord {
    fn index_mut(&mut self, index: usize) -> &mut i32 {
        &mut self.0[index]
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<i32>> for Coord {
    fn from(v: Vec<i32>) -> Self {
        Coord(v)
    }
}

impl From<&[i32]> for Coord {
    fn from(v: &[i32]) -> Self {
        Coord(v.to_vec())
    }
}

/// Convenience macro for writing coordinates in tests and examples: `coord![3, 5, 4]`.
#[macro_export]
macro_rules! coord {
    ($($x:expr),* $(,)?) => {
        $crate::coord::Coord::new(vec![$($x as i32),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_matches_paper_definition() {
        let u = coord![1, 2, 3];
        let v = coord![4, 0, 3];
        assert_eq!(u.manhattan(&v), 3 + 2);
        assert_eq!(v.manhattan(&u), 5);
        assert_eq!(u.manhattan(&u), 0);
    }

    #[test]
    fn chebyshev_distance() {
        let u = coord![1, 2, 3];
        let v = coord![4, 0, 3];
        assert_eq!(u.chebyshev(&v), 3);
    }

    #[test]
    fn neighbor_detection_requires_unit_difference_in_one_dimension() {
        let u = coord![2, 2, 2];
        assert!(u.is_neighbor_of(&coord![3, 2, 2]));
        assert!(u.is_neighbor_of(&coord![2, 1, 2]));
        assert!(!u.is_neighbor_of(&coord![3, 3, 2]));
        assert!(!u.is_neighbor_of(&coord![4, 2, 2]));
        assert!(!u.is_neighbor_of(&coord![2, 2, 2]));
    }

    #[test]
    fn direction_to_neighbor() {
        let u = coord![2, 2];
        assert_eq!(u.direction_to(&coord![3, 2]), Some(Direction::new(0, true)));
        assert_eq!(
            u.direction_to(&coord![2, 1]),
            Some(Direction::new(1, false))
        );
        assert_eq!(u.direction_to(&coord![3, 3]), None);
    }

    #[test]
    fn step_moves_one_hop() {
        let u = coord![2, 2, 2];
        assert_eq!(u.step(Direction::new(2, true)), coord![2, 2, 3]);
        assert_eq!(u.step(Direction::new(0, false)), coord![1, 2, 2]);
    }

    #[test]
    fn differing_dims_and_offset() {
        let u = coord![0, 5, 2];
        let v = coord![3, 5, 0];
        assert_eq!(u.differing_dims(&v), vec![0, 2]);
        assert_eq!(u.offset_to(&v), vec![3, 0, -2]);
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(format!("{}", coord![6, 4, 5]), "(6,4,5)");
    }
}
