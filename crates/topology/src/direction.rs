//! Mesh directions.
//!
//! An interior node of an n-D mesh has degree `2n`: for each dimension there is a
//! positive and a negative direction.  The paper names the six directions of a 3-D
//! mesh after the adjacent surfaces `S0..S5` of a faulty block (Definition 3): `S0`
//! and `S3` are perpendicular to the X axis (negative/positive side), `S1`/`S4` to Y,
//! and `S2`/`S5` to Z.  [`Direction::surface_index`] reproduces that numbering.

use std::fmt;

/// One of the `2n` directions of an n-D mesh: a dimension plus a sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Direction {
    /// The dimension along which this direction moves (0-based).
    pub dim: usize,
    /// `true` for the positive direction, `false` for the negative one.
    pub positive: bool,
}

impl Direction {
    /// Creates a direction along `dim`, positive if `positive`.
    pub fn new(dim: usize, positive: bool) -> Self {
        Direction { dim, positive }
    }

    /// The positive direction along `dim`.
    pub fn pos(dim: usize) -> Self {
        Direction::new(dim, true)
    }

    /// The negative direction along `dim`.
    pub fn neg(dim: usize) -> Self {
        Direction::new(dim, false)
    }

    /// The coordinate delta of one hop in this direction (`+1` or `-1`).
    #[inline]
    pub fn delta(&self) -> i32 {
        if self.positive {
            1
        } else {
            -1
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(&self) -> Direction {
        Direction::new(self.dim, !self.positive)
    }

    /// All `2n` directions of an n-D mesh, ordered `(-d0, +d0, -d1, +d1, ...)`.
    ///
    /// Allocates; hot paths should use the allocation-free [`Direction::iter_all`],
    /// which yields the same directions in the same order.
    pub fn all(n: usize) -> Vec<Direction> {
        Direction::iter_all(n).collect()
    }

    /// Iterates over all `2n` directions of an n-D mesh in [`Direction::index`]
    /// order — `(-d0, +d0, -d1, +d1, ...)`, the same order as [`Direction::all`] —
    /// without allocating.
    #[inline]
    pub fn iter_all(n: usize) -> impl Iterator<Item = Direction> {
        (0..2 * n).map(Direction::from_index)
    }

    /// A dense index in `0..2n`, compatible with [`Direction::from_index`].
    ///
    /// The negative direction of dimension `d` maps to `2d`, the positive one to
    /// `2d + 1`.
    #[inline]
    pub fn index(&self) -> usize {
        2 * self.dim + usize::from(self.positive)
    }

    /// Inverse of [`Direction::index`].
    #[inline]
    pub fn from_index(idx: usize) -> Direction {
        Direction::new(idx / 2, idx % 2 == 1)
    }

    /// The adjacent-surface number used by the paper for a block in an n-D mesh
    /// (Definition 3 uses 3-D): surface `S_i` with `i < n` lies on the negative side
    /// of dimension `i`, and `S_{i+n}` on the positive side, so that a surface and its
    /// opposite differ by `n` (the paper writes the opposite of `S_i` as
    /// `S_{(i+3) mod 6}` in 3-D).
    pub fn surface_index(&self, n: usize) -> usize {
        if self.positive {
            self.dim + n
        } else {
            self.dim
        }
    }

    /// Inverse of [`Direction::surface_index`].
    pub fn from_surface_index(surface: usize, n: usize) -> Direction {
        if surface < n {
            Direction::neg(surface)
        } else {
            Direction::pos(surface - n)
        }
    }
}

impl fmt::Debug for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.positive { '+' } else { '-' };
        let name = match self.dim {
            0 => "X".to_string(),
            1 => "Y".to_string(),
            2 => "Z".to_string(),
            d => format!("d{d}"),
        };
        write!(f, "{sign}{name}")
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A compact set of directions, used for the per-node *used direction* lists in the
/// routing header of Algorithm 3 (each forwarding direction at a participant node
/// cannot be used again).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectionSet {
    bits: u64,
}

impl DirectionSet {
    /// The empty set.
    pub fn empty() -> Self {
        DirectionSet { bits: 0 }
    }

    /// Inserts a direction; returns `true` if it was not present before.
    #[inline]
    pub fn insert(&mut self, dir: Direction) -> bool {
        let mask = 1u64 << dir.index();
        let newly = self.bits & mask == 0;
        self.bits |= mask;
        newly
    }

    /// Removes a direction.
    pub fn remove(&mut self, dir: Direction) {
        self.bits &= !(1u64 << dir.index());
    }

    /// True if the set contains `dir`.
    #[inline]
    pub fn contains(&self, dir: Direction) -> bool {
        self.bits & (1u64 << dir.index()) != 0
    }

    /// Number of directions in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates over the directions in the set (ascending index order).
    pub fn iter(&self) -> impl Iterator<Item = Direction> + '_ {
        (0..64usize)
            .filter(move |i| self.bits & (1u64 << i) != 0)
            .map(Direction::from_index)
    }
}

impl fmt::Debug for DirectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Direction> for DirectionSet {
    fn from_iter<T: IntoIterator<Item = Direction>>(iter: T) -> Self {
        let mut s = DirectionSet::empty();
        for d in iter {
            s.insert(d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_directions_of_a_3d_mesh() {
        let dirs = Direction::all(3);
        assert_eq!(dirs.len(), 6);
        assert!(dirs.contains(&Direction::pos(0)));
        assert!(dirs.contains(&Direction::neg(2)));
    }

    #[test]
    fn index_round_trips() {
        for n in 1..=6 {
            for d in Direction::all(n) {
                assert_eq!(Direction::from_index(d.index()), d);
                assert_eq!(Direction::from_surface_index(d.surface_index(n), n), d);
            }
        }
    }

    #[test]
    fn surface_numbering_matches_definition_3() {
        // S0/S3 perpendicular to X (S0 on the west = negative side), S1/S4 to Y,
        // S2/S5 to Z.
        let n = 3;
        assert_eq!(Direction::neg(0).surface_index(n), 0);
        assert_eq!(Direction::pos(0).surface_index(n), 3);
        assert_eq!(Direction::neg(1).surface_index(n), 1);
        assert_eq!(Direction::pos(1).surface_index(n), 4);
        assert_eq!(Direction::neg(2).surface_index(n), 2);
        assert_eq!(Direction::pos(2).surface_index(n), 5);
        // A surface and its opposite differ by n (mod 2n), as in the paper's
        // S_{(i+3) mod 6}.
        for d in Direction::all(n) {
            let i = d.surface_index(n);
            let j = d.opposite().surface_index(n);
            assert_eq!((i + n) % (2 * n), j);
        }
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::all(4) {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn direction_set_basic_operations() {
        let mut s = DirectionSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(Direction::pos(1)));
        assert!(!s.insert(Direction::pos(1)));
        assert!(s.insert(Direction::neg(3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Direction::pos(1)));
        assert!(!s.contains(Direction::neg(1)));
        s.remove(Direction::pos(1));
        assert!(!s.contains(Direction::pos(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn direction_set_iterates_in_index_order() {
        let s: DirectionSet = [Direction::pos(2), Direction::neg(0), Direction::neg(1)]
            .into_iter()
            .collect();
        let v: Vec<Direction> = s.iter().collect();
        assert_eq!(
            v,
            vec![Direction::neg(0), Direction::neg(1), Direction::pos(2)]
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Direction::pos(0)), "+X");
        assert_eq!(format!("{}", Direction::neg(1)), "-Y");
        assert_eq!(format!("{}", Direction::pos(2)), "+Z");
        assert_eq!(format!("{}", Direction::neg(5)), "-d5");
    }
}
