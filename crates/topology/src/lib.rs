//! # lgfi-topology
//!
//! Geometry of k-ary n-dimensional meshes, as used by the limited-global fault
//! information (LGFI) model of Jiang & Wu (IPDPS 2004).
//!
//! A k-ary n-D mesh has `N = k_1 * k_2 * ... * k_n` nodes; node `u` has an address
//! `(u_1, ..., u_n)` with `0 <= u_i < k_i`, an interior node degree of `2n`, and two
//! nodes are connected iff their addresses differ by exactly one in exactly one
//! dimension.  This crate provides:
//!
//! * [`Coord`] — an n-dimensional address with Manhattan-distance arithmetic,
//! * [`Direction`] — one of the `2n` mesh directions,
//! * [`Mesh`] — the mesh shape: id/coordinate conversion, neighbor enumeration,
//!   outermost-surface tests and sub-volume iteration,
//! * [`Region`] — an inclusive n-D box with the face/edge/corner "frame"
//!   classification that Definitions 2 and 3 of the paper are built on.
//!
//! Everything here is purely geometric; protocol state lives in `lgfi-core` and the
//! simulation substrate in `lgfi-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod direction;
pub mod mesh;
pub mod region;

pub use coord::Coord;
pub use direction::Direction;
pub use mesh::{Mesh, NodeId};
pub use region::{FrameLevel, Region};
